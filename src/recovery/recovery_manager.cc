#include "recovery/recovery_manager.h"

#include <vector>

#include "checkpoint/admission_gate.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/phase.h"
#include "txn/executor.h"
#include "txn/lock_manager.h"
#include "util/clock.h"

namespace calcdb {

Status RecoveryManager::LoadCheckpoints(CheckpointStorage* storage,
                                        KVStore* store,
                                        RecoveryStats* stats) {
  Stopwatch sw;
  std::vector<CheckpointInfo> chain = storage->RecoveryChain();
  for (const CheckpointInfo& info : chain) {
    CheckpointFileReader reader;
    CALCDB_RETURN_NOT_OK(reader.Open(info.path));
    CALCDB_RETURN_NOT_OK(
        reader.ReadAll([&](const CheckpointEntry& entry) -> Status {
          ++stats->entries_applied;
          if (entry.tombstone) {
            // Deleting an absent key is fine: a partial may tombstone a
            // record the loaded base never contained.
            store->Delete(entry.key);
            return Status::OK();
          }
          return store->Put(entry.key, entry.value);
        }));
    ++stats->checkpoints_loaded;
    stats->replay_from_lsn = info.vpoc_lsn;
  }
  stats->load_micros = sw.ElapsedMicros();
  return Status::OK();
}

Status RecoveryManager::ReplayLog(const CommitLog& log,
                                  const ProcedureRegistry& registry,
                                  KVStore* store, RecoveryStats* stats) {
  Stopwatch sw;
  // Minimal engine plumbing for serial replay.
  CommitLog scratch_log;
  PhaseController phases;
  AdmissionGate gate;
  EngineContext engine;
  engine.store = store;
  engine.log = &scratch_log;
  engine.phases = &phases;
  engine.gate = &gate;
  engine.ckpt_storage = nullptr;
  NoCheckpointer none(engine);
  LockManager locks(1);
  Executor executor(engine, &registry, &none, &locks);

  // With no checkpoint loaded, the whole log (from LSN 0) is the replay
  // set; otherwise replay strictly after the loaded point of consistency.
  std::vector<LogEntry> commits =
      stats->checkpoints_loaded == 0
          ? log.CommitsFrom(0)
          : log.CommitsAfter(stats->replay_from_lsn);
  for (const LogEntry& entry : commits) {
    CALCDB_RETURN_NOT_OK(executor.Replay(entry.proc_id, entry.args));
    ++stats->txns_replayed;
  }
  stats->replay_micros = sw.ElapsedMicros();
  return Status::OK();
}

Status RecoveryManager::Recover(CheckpointStorage* storage,
                                const CommitLog& log,
                                const ProcedureRegistry& registry,
                                KVStore* store, RecoveryStats* stats) {
  CALCDB_RETURN_NOT_OK(LoadCheckpoints(storage, store, stats));
  return ReplayLog(log, registry, store, stats);
}

}  // namespace calcdb
