#include "recovery/recovery_manager.h"

#include <vector>

#include "checkpoint/admission_gate.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/phase.h"
#include "obs/obs.h"
#include "txn/executor.h"
#include "txn/lock_manager.h"
#include "util/clock.h"

namespace calcdb {

Status RecoveryManager::LoadCheckpoints(CheckpointStorage* storage,
                                        KVStore* store,
                                        RecoveryStats* stats) {
  Stopwatch sw;
  CALCDB_TRACE_SPAN(load_span, "load_checkpoints", "recovery", 0);
  std::vector<CheckpointInfo> chain = storage->RecoveryChain();
  for (const CheckpointInfo& info : chain) {
    CheckpointFileReader reader;
    CALCDB_RETURN_NOT_OK(reader.Open(info.path));
    CALCDB_RETURN_NOT_OK(
        reader.ReadAll([&](const CheckpointEntry& entry) -> Status {
          ++stats->entries_applied;
          CALCDB_COUNTER_ADD("calcdb.recovery.entries_applied", 1);
          CALCDB_COUNTER_ADD("calcdb.recovery.checkpoint_read_bytes",
                             entry.value.size() + sizeof(entry.key));
          if (entry.tombstone) {
            // Deleting an absent key is fine: a partial may tombstone a
            // record the loaded base never contained.
            store->Delete(entry.key);
            return Status::OK();
          }
          return store->Put(entry.key, entry.value);
        }));
    ++stats->checkpoints_loaded;
    stats->replay_from_lsn = info.vpoc_lsn;
  }
  stats->load_micros = sw.ElapsedMicros();
  return Status::OK();
}

Status RecoveryManager::ReplayLog(const CommitLog& log,
                                  const ProcedureRegistry& registry,
                                  KVStore* store, RecoveryStats* stats) {
  Stopwatch sw;
  // Minimal engine plumbing for serial replay.
  CommitLog scratch_log;
  PhaseController phases;
  AdmissionGate gate;
  EngineContext engine;
  engine.store = store;
  engine.log = &scratch_log;
  engine.phases = &phases;
  engine.gate = &gate;
  engine.ckpt_storage = nullptr;
  NoCheckpointer none(engine);
  LockManager locks(1);
  Executor executor(engine, &registry, &none, &locks);

  // With no checkpoint loaded, the whole log (from LSN 0) is the replay
  // set; otherwise replay strictly after the loaded point of consistency.
  std::vector<LogEntry> commits =
      stats->checkpoints_loaded == 0
          ? log.CommitsFrom(0)
          : log.CommitsAfter(stats->replay_from_lsn);
  CALCDB_TRACE_SPAN(replay_span, "replay_log", "recovery", commits.size());
  for (const LogEntry& entry : commits) {
    CALCDB_RETURN_NOT_OK(executor.Replay(entry.proc_id, entry.args));
    ++stats->txns_replayed;
    CALCDB_COUNTER_ADD("calcdb.recovery.txns_replayed", 1);
    // Framed commit size: len + crc + type + txn_id + proc_id +
    // args_len + args (matches CommitLog::EncodeEntry).
    CALCDB_COUNTER_ADD("calcdb.recovery.log_read_bytes",
                       4 + 4 + 1 + 8 + 4 + 4 + entry.args.size());
    // Batch markers let a trace show replay progress over time.
    if ((stats->txns_replayed & 8191) == 0) {
      CALCDB_TRACE_INSTANT("replay_batch", "recovery",
                           stats->txns_replayed);
    }
  }
  stats->replay_micros = sw.ElapsedMicros();
  return Status::OK();
}

Status RecoveryManager::Recover(CheckpointStorage* storage,
                                const CommitLog& log,
                                const ProcedureRegistry& registry,
                                KVStore* store, RecoveryStats* stats) {
  CALCDB_RETURN_NOT_OK(LoadCheckpoints(storage, store, stats));
  return ReplayLog(log, registry, store, stats);
}

}  // namespace calcdb
