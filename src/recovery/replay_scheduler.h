#ifndef CALCDB_RECOVERY_REPLAY_SCHEDULER_H_
#define CALCDB_RECOVERY_REPLAY_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "checkpoint/admission_gate.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/phase.h"
#include "log/commit_log.h"
#include "storage/sharded_store.h"
#include "txn/executor.h"
#include "txn/lock_manager.h"
#include "txn/procedure.h"
#include "util/status.h"

namespace calcdb {

struct RecoveryStats;

/// Parallel deterministic command replay (cf. Wu et al., "Fast Failure
/// Recovery for Main-Memory DBMSs on Multicores"): command logging only
/// records transaction *inputs*, but our stored-procedure model declares
/// each command's read/write key sets up front (the same property that
/// makes deadlock-free 2PL possible), so replay can dispatch
/// non-conflicting commands to a worker pool and still reproduce the
/// serial replay state exactly.
///
/// Dependency rule — per-key "last writer" tickets:
///
///   - A dispatcher walks the replay set in LSN order, assigning each
///     command a dense sequence number (its ticket).
///   - Every canonical key hashes into one of kTicketSlots slots. The
///     dispatcher remembers, per slot, the ticket of the last command
///     whose footprint touched it; each dispatched command carries
///     (slot, last_ticket) pairs for its whole footprint and the slot
///     table is advanced to the command's own ticket.
///   - A worker runs a command only once, for every carried pair, the
///     slot's *completed* ticket has reached the recorded value. Two
///     commands with intersecting footprints therefore execute in LSN
///     order; disjoint commands run concurrently. Hash collisions only
///     add false conflicts — never missed ones.
///
/// Liveness: the task queue is FIFO, so when a worker pops a command,
/// every command it can possibly wait on has already been popped (it is
/// retired or held by another worker). The earliest unretired command
/// always has its tickets satisfied, so the pool cannot deadlock.
///
/// Commands whose footprint is not fully declared
/// (KeySets::allow_undeclared_writes, e.g. TPC-C NewOrder) cannot be
/// ticketed: the dispatcher drains the pool, replays them inline on the
/// dispatcher thread (a serial fallback, surfaced via the
/// `recovery.replay_fallback` WARN event), then resumes parallel
/// dispatch.
///
/// With `threads <= 1` no pool is created and Replay() is the legacy
/// strictly-serial loop, byte-for-byte (pinned by
/// ReplayScheduler.ThreadsOneMatchesSerial).
class ReplayScheduler {
 public:
  /// `registry` and `store` must outlive the scheduler. `threads > 1`
  /// spawns the worker pool immediately; it is joined by the destructor.
  ReplayScheduler(const ProcedureRegistry& registry, ShardedStore* store,
                  int threads);
  ~ReplayScheduler();

  ReplayScheduler(const ReplayScheduler&) = delete;
  ReplayScheduler& operator=(const ReplayScheduler&) = delete;

  /// Replays `commits` in dependency order and blocks until every
  /// command has retired. May be called repeatedly (once per log
  /// generation); tickets persist across calls, so cross-call ordering
  /// is a strict barrier (Drain before return). On the first command
  /// failure the remaining work is abandoned and the first error is
  /// returned; the store may then hold a replayed prefix, exactly like
  /// serial replay.
  ///
  /// Updates stats: txns_replayed (+= this call), replay_conflicts /
  /// replay_serial_fallbacks / replayed_per_worker (cumulative for this
  /// scheduler), replay_threads_used.
  [[nodiscard]] Status Replay(const std::vector<LogEntry>& commits,
                              RecoveryStats* stats);

  int threads() const { return threads_; }

 private:
  /// Ticket-table width. Collisions are correctness-neutral (they only
  /// serialize more), so a fixed power of two keeps the table compact:
  /// 64 Ki slots ≈ one 512 KiB array.
  static constexpr uint32_t kTicketSlots = 1u << 16;
  /// Dispatcher backpressure bound on queued-but-unpopped commands.
  static constexpr size_t kMaxQueued = 4096;

  struct TicketDep {
    uint32_t slot = 0;
    uint64_t wait = 0;  ///< run once done_[slot] >= wait
  };
  struct Task {
    uint64_t seq = 0;  ///< this command's ticket (1-based, dense)
    const LogEntry* entry = nullptr;
    /// One entry per distinct footprint slot: the wait precondition,
    /// and the slots to publish `seq` to after retiring.
    std::vector<TicketDep> deps;
  };

  Status SerialReplay(const std::vector<LogEntry>& commits,
                      RecoveryStats* stats);
  void WorkerLoop(int worker_index);
  bool RunCommand(const Task& task);
  void Dispatch(Task task);
  void Drain();
  void Fail(const Status& st);
  void CountReplayed(const LogEntry& entry);

  static uint32_t SlotOf(uint64_t key) {
    // Fibonacci multiplicative hash: adjacent keys (the common layout)
    // spread across the whole table.
    return static_cast<uint32_t>((key * 0x9E3779B97F4A7C15ull) >> 48);
  }

  // Minimal engine plumbing for command replay: a scratch log (the
  // replayed transactions' own commits are discarded), no checkpointer,
  // a single-stripe lock manager (replay takes no locks).
  CommitLog scratch_log_;
  PhaseController phases_;
  AdmissionGate gate_;
  EngineContext engine_;
  std::unique_ptr<NoCheckpointer> none_;
  LockManager locks_{1};
  std::unique_ptr<Executor> executor_;

  const ProcedureRegistry* registry_;
  const int threads_;

  // Ticket state. last_ is touched only by the dispatcher (the thread
  // inside Replay()); done_ is the workers' completion table.
  std::vector<uint64_t> last_;
  std::unique_ptr<std::atomic<uint64_t>[]> done_;
  uint64_t next_seq_ = 0;  ///< dispatcher only

  std::mutex mu_;
  std::condition_variable cv_pop_;      ///< workers: queue non-empty / stop
  std::condition_variable cv_space_;    ///< dispatcher: queue below bound
  std::condition_variable cv_drained_;  ///< dispatcher: all work retired
  std::deque<Task> queue_;      ///< guarded by mu_
  uint64_t inflight_ = 0;       ///< dispatched, unretired; guarded by mu_
  bool stop_ = false;           ///< guarded by mu_
  Status first_error_;          ///< guarded by mu_
  std::atomic<bool> failed_{false};

  // Cumulative over the scheduler's lifetime (all Replay calls).
  std::atomic<uint64_t> replayed_total_{0};
  std::atomic<uint64_t> conflicts_{0};  ///< dispatch-time footprint overlaps
  uint64_t serial_fallbacks_ = 0;  ///< dispatcher only
  std::unique_ptr<std::atomic<uint64_t>[]> worker_replayed_;

  std::vector<std::thread> workers_;
};

}  // namespace calcdb

#endif  // CALCDB_RECOVERY_REPLAY_SCHEDULER_H_
