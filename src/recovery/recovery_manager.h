#ifndef CALCDB_RECOVERY_RECOVERY_MANAGER_H_
#define CALCDB_RECOVERY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/ckpt_storage.h"
#include "log/commit_log.h"
#include "storage/sharded_store.h"
#include "txn/procedure.h"
#include "util/status.h"

namespace calcdb {

/// Timing and size breakdown of a recovery (paper §5.1.3 measures the
/// merge component of this as "recovery time").
struct RecoveryStats {
  /// Per-generation replay breakdown (ReplayLogGenerations): how many of
  /// each generation file's commits were replayed vs. retired as covered
  /// by the loaded checkpoint chain (the anchor rule).
  struct GenerationReplay {
    std::string file;
    uint64_t commits_total = 0;
    uint64_t replayed = 0;
    uint64_t skipped = 0;
  };

  uint64_t checkpoints_loaded = 0;
  uint64_t checkpoints_rejected = 0;  ///< torn (crash-artifact) checkpoints
  uint64_t segments_loaded = 0;       ///< checkpoint files applied
  uint64_t entries_applied = 0;
  uint64_t txns_replayed = 0;
  int64_t load_micros = 0;    ///< checkpoint chain load + merge time
  int64_t replay_micros = 0;  ///< deterministic command replay time
  uint64_t replay_from_lsn = 0;
  uint64_t last_checkpoint_id = 0;  ///< id of the last applied checkpoint
  uint64_t log_generations_replayed = 0;

  // Parallel replay (ReplayScheduler). With replay_threads = 1 these
  // stay at their serial values: threads_used 1, no conflicts, no
  // fallbacks, empty per-worker breakdown.
  uint64_t replay_threads_used = 0;
  uint64_t replay_conflicts = 0;  ///< commands ordered behind an earlier
                                  ///< command's footprint (deterministic:
                                  ///< counted at dispatch, not at wait)
  uint64_t replay_serial_fallbacks = 0;  ///< undeclared-footprint commands
  std::vector<uint64_t> replayed_per_worker;
  std::vector<GenerationReplay> generations;
};

/// Recovery (paper §3): load the newest full checkpoint, apply every later
/// partial in order (latest wins, tombstones delete), then deterministically
/// replay the command log's committed transactions from the loaded
/// checkpoint's point of consistency onward.
///
/// Replay correctness rests on two properties of this engine: strict 2PL
/// makes the commit-token order consistent with the serialization order
/// for every conflicting transaction pair, and stored procedures are
/// deterministic functions of (args, visible state) — so serial
/// re-execution in commit order reproduces the pre-crash state exactly.
class RecoveryManager {
 public:
  /// Loads the manifest's recovery chain into `store` (which should be
  /// empty). Sets `*replay_from_lsn` to the last loaded checkpoint's
  /// point-of-consistency LSN (0 with no checkpoints).
  ///
  /// Every chain member is validated (all segment footers + CRCs) before
  /// anything is applied. A checkpoint with a torn file — a short read,
  /// the signature of a crash mid-write or mid-truncation — is rejected
  /// together with every later checkpoint, and the chain is recomputed
  /// from the surviving prefix; command-log replay from the older point
  /// of consistency re-covers the discarded window. A checkpoint whose
  /// bytes are present but wrong (CRC / entry-count mismatch) fails
  /// loudly with Corruption: that is damage, not a crash artifact.
  ///
  /// `load_threads > 1` loads the segment files of each checkpoint with a
  /// parallel worker pool (segments of one checkpoint hold disjoint keys;
  /// checkpoints still apply in chain order so latest-wins is preserved).
  [[nodiscard]] static Status LoadCheckpoints(CheckpointStorage* storage,
                                              ShardedStore* store,
                                              RecoveryStats* stats,
                                              int load_threads = 1);

  /// Replays committed transactions with LSN > stats->replay_from_lsn.
  ///
  /// `replay_threads > 1` replays with the parallel deterministic
  /// scheduler (recovery/replay_scheduler.h): commands whose declared
  /// key footprints are disjoint execute concurrently, conflicting
  /// commands serialize in LSN order, and the final store state is
  /// byte-identical to serial replay. 1 is the legacy serial loop.
  [[nodiscard]] static Status ReplayLog(const CommitLog& log,
                                        const ProcedureRegistry& registry,
                                        ShardedStore* store, RecoveryStats* stats,
                                        int replay_threads = 1);

  /// Replays a sequence of streamed command-log generation files (oldest
  /// first, as CommandLogStreamer::ListLogFiles returns them) on top of a
  /// loaded checkpoint chain. LSNs restart at 0 in every generation, so
  /// `stats->replay_from_lsn` only applies within the *anchor*
  /// generation: the newest one containing the RESOLVE phase token of the
  /// last applied checkpoint (id `stats->last_checkpoint_id`) at exactly
  /// that LSN. The anchor replays commits after the token; every later
  /// generation replays in full; generations before the anchor are
  /// retired (fully covered by the checkpoint). If no generation holds
  /// the anchor token, the checkpoint postdates everything the log
  /// persisted — since log appends are sequential, nothing after the
  /// token persisted either, and there is nothing to replay. With no
  /// checkpoints loaded every generation replays in full. See
  /// docs/DURABILITY.md, "Composing recovery with streamed logs", and
  /// docs/RECOVERY.md for the full contract.
  ///
  /// `replay_threads` as in ReplayLog; the scheduler drains completely
  /// at every generation boundary, so the anchor rule composes with
  /// parallel replay unchanged. `log_read_ahead_bytes` sizes the
  /// generation decoder's read-ahead buffer (0: libc default). Fills
  /// stats->generations with the per-generation replayed/skipped
  /// breakdown.
  [[nodiscard]] static Status ReplayLogGenerations(
      const std::vector<std::string>& files,
      const ProcedureRegistry& registry, ShardedStore* store,
      RecoveryStats* stats, int replay_threads = 1,
      size_t log_read_ahead_bytes = 0);

  /// LoadCheckpoints + ReplayLog.
  [[nodiscard]] static Status Recover(CheckpointStorage* storage,
                                      const CommitLog& log,
                                      const ProcedureRegistry& registry,
                                      ShardedStore* store, RecoveryStats* stats,
                                      int load_threads = 1,
                                      int replay_threads = 1);
};

}  // namespace calcdb

#endif  // CALCDB_RECOVERY_RECOVERY_MANAGER_H_
