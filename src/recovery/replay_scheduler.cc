#include "recovery/replay_scheduler.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "recovery/recovery_manager.h"

namespace calcdb {

ReplayScheduler::ReplayScheduler(const ProcedureRegistry& registry,
                                 ShardedStore* store, int threads)
    : registry_(&registry), threads_(threads < 1 ? 1 : threads) {
  engine_.store = store;
  engine_.log = &scratch_log_;
  engine_.phases = &phases_;
  engine_.gate = &gate_;
  engine_.ckpt_storage = nullptr;
  none_ = std::make_unique<NoCheckpointer>(engine_);
  executor_ =
      std::make_unique<Executor>(engine_, registry_, none_.get(), &locks_);
  if (threads_ > 1) {
    last_.assign(kTicketSlots, 0);
    done_ = std::make_unique<std::atomic<uint64_t>[]>(kTicketSlots);
    for (uint32_t i = 0; i < kTicketSlots; ++i) {
      done_[i].store(0, std::memory_order_relaxed);
    }
    worker_replayed_ =
        std::make_unique<std::atomic<uint64_t>[]>(threads_);
    for (int i = 0; i < threads_; ++i) {
      worker_replayed_[i].store(0, std::memory_order_relaxed);
    }
    workers_.reserve(static_cast<size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ReplayScheduler::~ReplayScheduler() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      stop_ = true;
    }
    cv_pop_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void ReplayScheduler::CountReplayed(const LogEntry& entry) {
  CALCDB_COUNTER_ADD("calcdb.recovery.txns_replayed", 1);
  // Framed commit size: len + crc + type + txn_id + proc_id +
  // args_len + args (matches CommitLog::EncodeEntry).
  CALCDB_COUNTER_ADD("calcdb.recovery.log_read_bytes",
                     4 + 4 + 1 + 8 + 4 + 4 + entry.args.size());
  // Batch markers let a trace show replay progress over time.
  uint64_t n = replayed_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((n & 8191) == 0) {
    CALCDB_TRACE_INSTANT("replay_batch", "recovery", n);
  }
}

Status ReplayScheduler::SerialReplay(const std::vector<LogEntry>& commits,
                                     RecoveryStats* stats) {
  for (const LogEntry& entry : commits) {
    CALCDB_RETURN_NOT_OK(executor_->Replay(entry.proc_id, entry.args));
    ++stats->txns_replayed;
    CountReplayed(entry);
  }
  return Status::OK();
}

void ReplayScheduler::Fail(const Status& st) {
  std::lock_guard<std::mutex> guard(mu_);
  if (first_error_.ok()) first_error_ = st;
  failed_.store(true, std::memory_order_release);
}

bool ReplayScheduler::RunCommand(const Task& task) {
  // Wait for every footprint ticket. The spin is bounded by the pool's
  // forward progress (see the liveness argument in the header) and by
  // failed_, which releases all waiters.
  for (const TicketDep& dep : task.deps) {
    while (done_[dep.slot].load(std::memory_order_acquire) < dep.wait) {
      if (failed_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    if (failed_.load(std::memory_order_acquire)) break;
  }
  bool executed = false;
  if (!failed_.load(std::memory_order_acquire)) {
    Status st = executor_->Replay(task.entry->proc_id, task.entry->args);
    if (st.ok()) {
      CountReplayed(*task.entry);
      executed = true;
    } else {
      Fail(st);
    }
  }
  // Publish completion even when skipped on failure, so no surviving
  // waiter spins on a ticket that will never advance. Safe to publish
  // unconditionally: same-slot commands are serialized by the rule
  // itself, so each slot's ticket only ever moves forward.
  for (const TicketDep& dep : task.deps) {
    done_[dep.slot].store(task.seq, std::memory_order_release);
  }
  return executed;
}

void ReplayScheduler::WorkerLoop(int worker_index) {
  CALCDB_TRACE_SPAN(worker_span, "replay_worker", "recovery", worker_index);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_pop_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with no residual work
      task = std::move(queue_.front());
      queue_.pop_front();
      cv_space_.notify_one();
    }
    if (RunCommand(task)) {
      worker_replayed_[worker_index].fetch_add(1,
                                               std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (--inflight_ == 0 && queue_.empty()) cv_drained_.notify_all();
    }
  }
}

void ReplayScheduler::Dispatch(Task task) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock, [this] { return queue_.size() < kMaxQueued; });
  queue_.push_back(std::move(task));
  ++inflight_;
  cv_pop_.notify_one();
}

void ReplayScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drained_.wait(lock, [this] { return inflight_ == 0 && queue_.empty(); });
}

Status ReplayScheduler::Replay(const std::vector<LogEntry>& commits,
                               RecoveryStats* stats) {
  CALCDB_TRACE_SPAN(replay_span, "replay_log", "recovery", commits.size());
  stats->replay_threads_used = static_cast<uint64_t>(threads_);
  if (threads_ <= 1) {
    return SerialReplay(commits, stats);
  }

  uint64_t replayed_before = replayed_total_.load(std::memory_order_relaxed);
  Status dispatch_error;
  std::vector<uint32_t> slots;
  KeySets sets;
  for (const LogEntry& entry : commits) {
    if (failed_.load(std::memory_order_acquire)) break;
    Status fp = Executor::ExtractFootprint(*registry_, entry.proc_id,
                                           entry.args, &sets);
    if (!fp.ok()) {
      dispatch_error = fp;
      break;
    }
    if (sets.allow_undeclared_writes) {
      // The declared sets under-approximate this command's footprint
      // (e.g. TPC-C NewOrder's state-dependent insert keys), so the
      // ticket rule cannot order it. Degrade to a full barrier: drain
      // the pool, replay inline, resume parallel dispatch.
      Drain();
      if (failed_.load(std::memory_order_acquire)) break;
      ++serial_fallbacks_;
      CALCDB_WARN("recovery.replay_fallback", "recovery",
                  "undeclared footprint forces serial replay",
                  {"proc_id", static_cast<int64_t>(entry.proc_id)},
                  {"fallbacks", static_cast<int64_t>(serial_fallbacks_)});
      Status st = executor_->Replay(entry.proc_id, entry.args);
      if (!st.ok()) {
        dispatch_error = st;
        break;
      }
      CountReplayed(entry);
      continue;
    }
    Task task;
    task.seq = ++next_seq_;
    task.entry = &entry;
    slots.clear();
    for (uint64_t key : sets.read_keys) slots.push_back(SlotOf(key));
    for (uint64_t key : sets.write_keys) slots.push_back(SlotOf(key));
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    task.deps.reserve(slots.size());
    bool conflicting = false;
    for (uint32_t slot : slots) {
      task.deps.push_back(TicketDep{slot, last_[slot]});
      conflicting |= last_[slot] != 0;
      last_[slot] = task.seq;
    }
    if (conflicting) {
      // Deterministic (schedule-independent): this command's footprint
      // intersects an earlier command's, so tickets order it rather
      // than leaving it free to run.
      conflicts_.fetch_add(1, std::memory_order_relaxed);
      CALCDB_COUNTER_ADD("calcdb.recovery.replay_conflicts", 1);
    }
    Dispatch(std::move(task));
  }
  Drain();

  stats->txns_replayed +=
      replayed_total_.load(std::memory_order_relaxed) - replayed_before;
  stats->replay_conflicts = conflicts_.load(std::memory_order_relaxed);
  stats->replay_serial_fallbacks = serial_fallbacks_;
  stats->replayed_per_worker.assign(static_cast<size_t>(threads_), 0);
  for (int i = 0; i < threads_; ++i) {
    stats->replayed_per_worker[static_cast<size_t>(i)] =
        worker_replayed_[i].load(std::memory_order_relaxed);
  }

  if (!dispatch_error.ok()) return dispatch_error;
  std::lock_guard<std::mutex> guard(mu_);
  return first_error_;
}

}  // namespace calcdb
