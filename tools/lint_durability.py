#!/usr/bin/env python3
"""Repo-specific durability-protocol linter for calcdb.

Sibling of lint_concurrency.py (which covers memory-ordering and locking
invariants); this tool covers the *error-swallowing and IO-ordering* bug
class that crash-recovery protocols die from (docs/STATIC_ANALYSIS.md).
calcdb::Status is [[nodiscard]], so the compiler already rejects a bare
dropped return; these rules police everything the type system cannot see:

  dropped-status        A `(void)`-cast discarding a Status (a cast of a
                        call to any Status-returning function declared in
                        the tree's headers, or of a local declared as
                        Status) must carry a
                        `// calcdb-status-ignored: <reason>` comment on
                        the same line or just above. `(void)` is how a
                        [[nodiscard]] warning is silenced, so every such
                        cast is a deliberate drop — and deliberate drops
                        need a written justification.
  suppression-reason    Every `calcdb-status-ignored` marker must be
                        followed by `:` and a non-empty reason. A bare
                        marker silences the compiler while telling the
                        next reader nothing.
  status-never-read     A local `Status` variable that is declared (and
                        possibly assigned) but never read before its
                        scope ends. An unread status is a dropped status
                        wearing a variable name.
  fsync-before-rename   Inside one function, a `rename()` call must be
                        preceded by an `fsync()`: publishing a file name
                        whose contents are not yet durable lets a power
                        cut surface stale bytes under the new name
                        (docs/DURABILITY.md, manifest protocol).
  raw-io                Raw file-mutation primitives (fopen/open/creat/
                        rename/unlink/remove/truncate) are only allowed
                        in util/throttled_file.cc, checkpoint/
                        ckpt_storage.cc and util/fault_injection.cc —
                        every other durability path must go through the
                        ThrottledFileWriter / CheckpointStorage layers,
                        which own the fsync discipline and carry the
                        crash-point probes.
  crash-point-coverage  A function (outside util/throttled_file.cc) that
                        calls fsync()/rename() directly is a durability-
                        critical step and must contain a CALCDB_CRASH_
                        POINT / CALCDB_FAULT_STATUS / CALCDB_FAULT_POINT
                        probe, so the crash-torture matrix can kill the
                        process there (tests/crash_torture_test.cc).
  crash-point-orphaned  Every name registered in util/fault_injection.cc
                        must be used by a probe somewhere under the lint
                        root: an orphaned registry entry makes the
                        DURABILITY.md survival table overclaim coverage.
                        (lint_concurrency.py checks the reverse
                        direction, probe -> registry.)
  raw-stderr            Direct stderr writes (fprintf(stderr, ...),
                        fputs(..., stderr), perror()) are only allowed in
                        obs/event_log.cc — the event sink owns the
                        process's diagnostic channel, with severity,
                        rate-limiting and a machine-readable mirror.
                        Everywhere else, emit a CALCDB_WARN/CALCDB_ERROR
                        event instead, or waive with a reason (e.g. a
                        fatal path that aborts before any sink could
                        flush).

A finding can be waived per line with a trailing comment carrying a
mandatory justification:
    // lint:allow(<rule-id>): <justification>

Fixture mode: `--fixtures <dir>` lints every .cc/.h under <dir>, where
each file declares the rules it must trigger in a leading comment
    // expect-lint: rule-a rule-b        (or `none` for a clean file)
and the run fails unless every file fires exactly its declared set.

Usage:
    lint_durability.py [--self-test] [--fixtures dir] [paths...]
Paths default to the src/ directory next to this script's repo root.
Exit status: 0 clean, 1 findings (or self-test/fixture failure).
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_concurrency import (  # noqa: E402
    Finding,
    call_args,
    line_of,
    load_fault_registry,
    strip_comments_and_strings,
)

# Files allowed to touch raw file-mutation primitives. Everything else
# goes through ThrottledFileWriter / CheckpointStorage.
RAW_IO_ALLOWED = (
    "util/throttled_file.cc",
    "checkpoint/ckpt_storage.cc",
    "util/fault_injection.cc",
)

# The one file allowed to write to stderr directly: the event sink's
# rate-limited WARN/ERROR mirror *is* the sanctioned stderr channel.
RAW_STDERR_ALLOWED = ("obs/event_log.cc",)

RAW_STDERR_RE = re.compile(
    r"(?<![\w:])(?:std::|::)?fprintf\s*\(\s*stderr\b"
    r"|(?<![\w:])(?:std::|::)?fputs\s*\([^;()]*,\s*stderr\s*\)"
    r"|(?<![\w:])(?:std::|::)?perror\s*\(")

RAW_IO_RE = re.compile(
    r"(?<![\w:])(?:std::|::)?"
    r"(fopen|fdopen|creat|rename|unlink|remove|truncate|ftruncate)\s*\("
    r"|(?<![\w.])::open\s*\("
)

FSYNC_RE = re.compile(r"(?<![\w:])(?:::)?(fsync|fdatasync)\s*\(")
# Barriers the ordering rule accepts before a rename: a raw fsync, or
# the tree's sanctioned wrapper ThrottledFileWriter::Sync()/Close()
# (both flush + fsync before returning OK).
BARRIER_RE = re.compile(
    r"(?<![\w:])(?:::)?(?:fsync|fdatasync)\s*\("
    r"|(?:\.|->)(?:Sync|Close)\s*\(")
RENAME_RE = re.compile(r"(?<![\w:])(?:std::|::)?rename\s*\(")
PROBE_RE = re.compile(
    r"\bCALCDB_(?:CRASH_POINT|CHILD_CRASH_POINT|FAULT_STATUS|FAULT_POINT)"
    r"\s*\(")
PROBE_NAME_RE = re.compile(
    r'\bCALCDB_(?:CRASH_POINT|FAULT_STATUS|FAULT_POINT)\s*\(\s*"')

SUPPRESS_MARKER = "calcdb-status-ignored"
# Marker with a mandatory non-empty reason after the colon.
SUPPRESS_OK_RE = re.compile(r"calcdb-status-ignored:\s*\S")

ALLOW_RE = re.compile(r"lint:allow\((?P<rule>[\w-]+)\)(?P<colon>:\s*\S)?")

# `Status <name>;` or `Status <name> = ...;` local declaration (skips
# function declarations: the name must start lowercase, matching the
# repo's variable style, and must not be followed by `(`).
STATUS_DECL_RE = re.compile(
    r"(?<![\w:])Status\s+([a-z_][A-Za-z0-9_]*)\s*(;|=[^=])")

VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*([A-Za-z_:][\w:\->.\s]*?)\s*\(|"
                          r"\(\s*void\s*\)\s*([A-Za-z_]\w*)\s*;")

# Matches a Status-returning function declaration in a header, to build
# the set of function names whose results are Status.
HEADER_STATUS_FN_RE = re.compile(
    r"(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+|static\s+)?"
    r"(?<![\w:])Status\s+([A-Z]\w*)\s*\(")


def waived(raw_lines, lineno, rule):
    """True if a justified lint:allow(<rule>) appears on `lineno` or in
    the contiguous comment/blank block immediately above it (so a waiver
    may sit on any line of a multi-line justification comment)."""
    def allow_on(idx):
        if 0 <= idx - 1 < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx - 1])
            return bool(m and m.group("rule") == rule and
                        m.group("colon"))
        return False

    if allow_on(lineno):
        return True
    probe = lineno - 1
    while probe >= 1:
        ln = raw_lines[probe - 1].strip()
        if not (ln.startswith("//") or ln.startswith("/*") or
                ln.startswith("*") or ln == ""):
            break
        if allow_on(probe):
            return True
        probe -= 1
    return False


def stmt_start_line(code, pos):
    """Line where the statement/declaration containing `pos` begins
    (after the previous `;`, `{` or `}`): multi-line function signatures
    anchor their waiver comments above the first line, not the brace."""
    for i in range(pos - 1, -1, -1):
        if code[i] in ";{}":
            j = i + 1
            while j < len(code) and code[j] in " \t\n":
                j += 1
            return line_of(code, j)
    return 1


def unjustified_waivers(path, raw_lines):
    """lint:allow(<durability rule>) without a reason is itself a
    finding (concurrency rules keep lint_concurrency's laxer syntax)."""
    findings = []
    for i, ln in enumerate(raw_lines):
        m = ALLOW_RE.search(ln)
        if m and m.group("rule") in DURABILITY_RULES and not m.group("colon"):
            findings.append(Finding(
                path, i + 1, "suppression-reason",
                f"lint:allow({m.group('rule')}) without a justification: "
                "write lint:allow(<rule>): <reason>"))
    return findings


FN_HEADER_TAIL_RE = re.compile(
    r"\)\s*(?:const|noexcept|override|final|->\s*[\w:<>&*\s]+|"
    r"CALCDB_\w+(?:\([^)]*\))?|\s)*$")
NAMESPACE_TAIL_RE = re.compile(r"\bnamespace(\s+[\w:]+)?\s*$")


def function_spans(code):
    """(start_pos, end_pos) spans of function bodies: every `{...}`
    block whose opening brace is preceded by a `)` (plus specifiers) and
    that is not nested in another function. `namespace ... {` braces are
    transparent — the whole tree lives inside `namespace calcdb`.
    Heuristic, but the repo's style (clang-format, Google) makes it
    reliable."""
    spans = []
    stack = []  # (open_pos, kind): kind in {"ns", "fn", "other"}
    eff_depth = 0  # brace depth ignoring namespace braces
    for i, c in enumerate(code):
        if c == "{":
            prefix = code[max(0, i - 160):i]
            if NAMESPACE_TAIL_RE.search(prefix):
                kind = "ns"
            elif eff_depth == 0 and FN_HEADER_TAIL_RE.search(prefix):
                kind = "fn"
            else:
                kind = "other"
            stack.append((i, kind))
            if kind != "ns":
                eff_depth += 1
        elif c == "}":
            if stack:
                start, kind = stack.pop()
                if kind != "ns":
                    eff_depth -= 1
                if kind == "fn":
                    spans.append((start, i + 1))
    return spans


def in_aggregate_scope(code, pos):
    """True if the declaration at `pos` sits directly inside a
    struct/class/union body (it is a member, not a local: reads go
    through `obj.member`, which scope-local use counting cannot see)."""
    depth = 0
    for i in range(pos - 1, -1, -1):
        c = code[i]
        if c == "}":
            depth += 1
        elif c == "{":
            if depth == 0:
                head = code[max(0, i - 200):i]
                return bool(re.search(
                    r"\b(struct|class|union)\s+[\w:]*\s*"
                    r"(?:final\s*)?(?::[^{;]*)?$", head))
            depth -= 1
    return False


def enclosing_scope_end(code, pos):
    """Position of the `}` closing the block containing `pos` (or EOF)."""
    depth = 0
    for i in range(pos, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(code)


def collect_status_functions(root):
    """Names of Status-returning functions declared in headers under
    `root` (plus the tree's well-known Status factories excluded)."""
    names = set()
    for dirpath, _, filenames in os.walk(root):
        for name in filenames:
            if not name.endswith(".h"):
                continue
            try:
                with open(os.path.join(dirpath, name),
                          encoding="utf-8") as f:
                    text = f.read()
            except OSError:
                continue
            code, _ = strip_comments_and_strings(text)
            for m in HEADER_STATUS_FN_RE.finditer(code):
                names.add(m.group(1))
    # Status factories produce a Status on purpose; casting one to void
    # is nonsense nobody writes, and OK() appears in macro fallbacks.
    names -= {"OK", "NotFound", "Corruption", "InvalidArgument", "IOError",
              "NotSupported", "Busy", "Aborted"}
    return names


def has_suppression(raw_lines, lineno):
    """calcdb-status-ignored with a reason on the line, or in the
    comment block directly above (up to 5 lines, contiguous)."""
    if lineno - 1 < len(raw_lines) and \
            SUPPRESS_OK_RE.search(raw_lines[lineno - 1]):
        return True
    for probe in range(lineno - 1, max(0, lineno - 6), -1):
        ln = raw_lines[probe - 1].strip()
        if SUPPRESS_OK_RE.search(ln):
            return True
        if not (ln.startswith("//") or ln.startswith("/*") or
                ln.startswith("*") or ln == ""):
            break
    return False


def bare_suppressions(path, raw_lines):
    findings = []
    for i, ln in enumerate(raw_lines):
        if SUPPRESS_MARKER in ln and not SUPPRESS_OK_RE.search(ln):
            findings.append(Finding(
                path, i + 1, "suppression-reason",
                "calcdb-status-ignored without a reason: write "
                "// calcdb-status-ignored: <why this drop is safe>"))
    return findings


def check_dropped_status(path, code, raw_lines, status_fns):
    findings = []
    # Locals declared as Status in this file: casting one to void drops
    # whatever was stored in it.
    status_locals = {m.group(1) for m in STATUS_DECL_RE.finditer(code)}
    for m in VOID_CAST_RE.finditer(code):
        lineno = line_of(code, m.start())
        if m.group(1) is not None:
            # (void)call(...): take the last identifier in the callee
            # chain, e.g. `db->executor()->Execute` -> Execute.
            callee = re.split(r"[^\w]+", m.group(1).strip())
            callee = [c for c in callee if c]
            name = callee[-1] if callee else ""
            if name not in status_fns:
                continue
            what = f"call to Status-returning '{name}'"
        else:
            name = m.group(2)
            if name not in status_locals:
                continue
            what = f"Status variable '{name}'"
        if has_suppression(raw_lines, lineno):
            continue
        if waived(raw_lines, lineno, "dropped-status"):
            continue
        findings.append(Finding(
            path, lineno, "dropped-status",
            f"(void)-cast of {what} without a "
            "// calcdb-status-ignored: <reason> comment — propagate it, "
            "record it in background_status, or justify the drop"))
    return findings


def check_status_never_read(path, code, raw_lines):
    findings = []
    for m in STATUS_DECL_RE.finditer(code):
        name = m.group(1)
        if in_aggregate_scope(code, m.start()):
            continue  # member: read as obj.member, outside this scope
        lineno = line_of(code, m.start())
        scope_end = enclosing_scope_end(code, m.end())
        body = code[m.end():scope_end]
        read = False
        for use in re.finditer(r"\b%s\b" % re.escape(name), body):
            after = body[use.end():]
            # `name = ...` (but not `name ==`) is a write, not a read.
            if re.match(r"\s*=(?!=)", after):
                continue
            read = True
            break
        if read:
            continue
        if waived(raw_lines, lineno, "status-never-read"):
            continue
        findings.append(Finding(
            path, lineno, "status-never-read",
            f"Status '{name}' is never read in its scope: every error "
            "stored in it is silently dropped (consult it, return it, or "
            "delete it)"))
    return findings


def check_fsync_before_rename(path, code, raw_lines):
    findings = []
    for start, end in function_spans(code):
        body = code[start:end]
        for m in RENAME_RE.finditer(body):
            lineno = line_of(code, start + m.start())
            if waived(raw_lines, lineno, "fsync-before-rename"):
                continue
            if BARRIER_RE.search(body, 0, m.start()):
                continue
            findings.append(Finding(
                path, lineno, "fsync-before-rename",
                "rename() with no fsync() earlier in the same function: "
                "the new name can survive a power cut while the contents "
                "do not (fsync the tmp file first; see "
                "CheckpointStorage::PersistManifest)"))
    return findings


def check_raw_io(path, code, raw_lines, root):
    norm = path.replace(os.sep, "/")
    if norm.endswith(RAW_IO_ALLOWED):
        return []
    findings = []
    for m in RAW_IO_RE.finditer(code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "raw-io"):
            continue
        op = m.group(1) or "open"
        findings.append(Finding(
            path, lineno, "raw-io",
            f"raw {op}() outside the sanctioned IO layers "
            f"({', '.join(RAW_IO_ALLOWED)}): route durability IO through "
            "ThrottledFileWriter / CheckpointStorage (which own the "
            "fsync discipline and crash-point probes), or waive with "
            "lint:allow(raw-io): <reason> for non-durability diagnostics"))
    return findings


def check_raw_stderr(path, code, raw_lines):
    norm = path.replace(os.sep, "/")
    if norm.endswith(RAW_STDERR_ALLOWED):
        return []
    findings = []
    for m in RAW_STDERR_RE.finditer(code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "raw-stderr"):
            continue
        findings.append(Finding(
            path, lineno, "raw-stderr",
            "direct stderr write outside obs/event_log.cc: emit a "
            "CALCDB_WARN/CALCDB_ERROR event instead (severity, rate "
            "limiting and the JSONL sink come for free), or waive with "
            "lint:allow(raw-stderr): <reason> on fatal paths that abort "
            "before any sink could run"))
    return findings


def check_crash_point_coverage(path, code, raw_lines):
    norm = path.replace(os.sep, "/")
    if norm.endswith("util/throttled_file.cc"):
        # The generic buffered-writer primitive: its durability-critical
        # *callers* carry the probes (ckpt_file footer/fsync, streamer
        # batch fsync, ...), where the protocol context lives.
        return []
    if not path.endswith(".cc"):
        return []
    findings = []
    for start, end in function_spans(code):
        body = code[start:end]
        if not (FSYNC_RE.search(body) or RENAME_RE.search(body)):
            continue
        if PROBE_RE.search(body):
            continue
        lineno = line_of(code, start)
        anchor = stmt_start_line(code, start)
        if waived(raw_lines, lineno, "crash-point-coverage") or \
                waived(raw_lines, anchor, "crash-point-coverage"):
            continue
        findings.append(Finding(
            path, lineno, "crash-point-coverage",
            "function fsyncs/renames but contains no CALCDB_CRASH_POINT/"
            "CALCDB_FAULT_STATUS/CALCDB_FAULT_POINT probe: the crash-"
            "torture matrix cannot kill the process at this durability "
            "step (register a point in util/fault_injection.cc and "
            "document it in docs/DURABILITY.md)"))
    return findings


def used_probe_names(paths_code):
    """Probe names used across the linted files ((path, code, raw) list).
    Names are read from the raw text at the match position, since string
    contents are blanked in `code` (same trick as lint_concurrency)."""
    used = set()
    for _, code, raw_lines in paths_code:
        raw = "\n".join(raw_lines)
        for m in PROBE_NAME_RE.finditer(code):
            quote = m.end() - 1
            close = raw.find('"', quote + 1)
            if close != -1:
                used.add(raw[quote + 1:close])
    return used


def check_crash_point_orphans(root, paths_code):
    registry = load_fault_registry(root)
    if registry is None:
        return []  # partial tree (e.g. fixture dir): nothing to diff
    used = used_probe_names(paths_code)
    findings = []
    reg_path = os.path.join(root, "util", "fault_injection.cc")
    for name in sorted(registry - used):
        findings.append(Finding(
            reg_path, 1, "crash-point-orphaned",
            f'registered crash point "{name}" is used by no probe under '
            "the lint root: remove the registry entry (and its "
            "DURABILITY.md survival-table row) or restore the probe"))
    return findings


DURABILITY_RULES = {
    "dropped-status",
    "suppression-reason",
    "status-never-read",
    "fsync-before-rename",
    "raw-io",
    "raw-stderr",
    "crash-point-coverage",
    "crash-point-orphaned",
}


def lint_file(path, root, status_fns):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code, raw_lines = strip_comments_and_strings(text)
    findings = []
    findings += bare_suppressions(path, raw_lines)
    findings += unjustified_waivers(path, raw_lines)
    findings += check_dropped_status(path, code, raw_lines, status_fns)
    findings += check_status_never_read(path, code, raw_lines)
    findings += check_fsync_before_rename(path, code, raw_lines)
    # raw-io and crash-point-coverage police the *product* durability
    # paths; tests and benchmarks corrupt/truncate/inspect files on
    # purpose (crash-artifact simulation) and are exempt.
    in_product = os.path.abspath(path).startswith(
        os.path.abspath(root) + os.sep)
    if in_product:
        findings += check_raw_io(path, code, raw_lines, root)
        findings += check_raw_stderr(path, code, raw_lines)
        findings += check_crash_point_coverage(path, code, raw_lines)
    return findings, (path, code, raw_lines)


def iter_tree(root):
    for dirpath, dirnames, filenames in os.walk(root):
        # Fixture snippets are known-bad on purpose; they are linted
        # only via their linter's --fixtures mode (lint_fixtures/ here,
        # lint_fixtures_concurrency/ by lint_concurrency.py).
        dirnames[:] = [d for d in dirnames
                       if not d.startswith("lint_fixtures")]
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


def source_root(paths):
    """The nearest 'src' ancestor of the first path (for the fault
    registry), falling back to the first directory."""
    for p in paths:
        probe = os.path.abspath(p if os.path.isdir(p) else
                                os.path.dirname(p))
        parts = probe.split(os.sep)
        if "src" in parts:
            cut = len(parts) - 1 - parts[::-1].index("src")
            return os.sep.join(parts[:cut + 1])
    return os.path.abspath(paths[0]) if paths else os.getcwd()


def run_lint(paths):
    root = source_root(paths)
    status_fns = collect_status_functions(root)
    findings = []
    linted = []
    for p in paths:
        files = iter_tree(p) if os.path.isdir(p) else [p]
        for path in files:
            f, pc = lint_file(path, root, status_fns)
            findings.extend(f)
            linted.append(pc)
    findings.extend(check_crash_point_orphans(root, linted))
    return findings


EXPECT_RE = re.compile(r"expect-lint:\s*([\w\- ]+)")


def run_fixtures(fixture_dir):
    """Every fixture file must fire exactly its declared rule set."""
    failures = []
    checked = 0
    status_fns = collect_status_functions(
        os.path.join(os.path.dirname(fixture_dir), "..", "src"))
    # Also accept Status functions declared inside the fixture dir.
    status_fns |= collect_status_functions(fixture_dir)
    for path in sorted(iter_tree_with_fixtures(fixture_dir)):
        with open(path, encoding="utf-8") as f:
            head = f.read(4096)
        m = EXPECT_RE.search(head)
        if not m:
            failures.append(f"{path}: missing '// expect-lint:' header")
            continue
        expected = set(m.group(1).split()) - {"none"}
        unknown = expected - DURABILITY_RULES
        if unknown:
            failures.append(f"{path}: unknown rule(s) {sorted(unknown)}")
            continue
        findings, pc = lint_file(path, fixture_dir, status_fns)
        findings.extend(check_crash_point_orphans(fixture_dir, [pc]))
        fired = {f.rule for f in findings}
        if fired != expected:
            failures.append(
                f"{path}: expected {sorted(expected) or ['none']}, "
                f"fired {sorted(fired) or ['none']}:\n    " +
                "\n    ".join(str(f) for f in findings))
        checked += 1
    if failures:
        print("lint_durability fixtures FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint_durability fixtures: {checked} file(s) behaved as "
          "declared")
    return 0


def iter_tree_with_fixtures(root):
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


# --------------------------------------------------------------------------
# Self-test: every rule fires on a seeded violation and stays quiet on the
# compliant twin.
# --------------------------------------------------------------------------

SELF_TEST_HEADER = (
    "class Foo {\n"
    " public:\n"
    "  Status Sync();\n"
    "  Status Close();\n"
    "};\n"
)

SELF_TEST_CASES = [
    # (rule, should_fire, filename, snippet)
    ("dropped-status", True, "a.cc",
     "void F(Foo* f) { (void)f->Close(); }\n"),
    ("dropped-status", True, "a.cc",
     "void F() { Status st = G(); (void)st; }\n"),
    ("dropped-status", False, "a.cc",
     "void F(Foo* f) {\n"
     "  // calcdb-status-ignored: destructor context, no error channel\n"
     "  (void)f->Close();\n"
     "}\n"),
    ("dropped-status", False, "a.cc",
     "void F(int rc) { (void)rc; }\n"),
    ("suppression-reason", True, "b.cc",
     "void F(Foo* f) {\n"
     "  // calcdb-status-ignored\n"
     "  (void)f->Close();\n"
     "}\n"),
    ("suppression-reason", False, "b.cc",
     "void F(Foo* f) {\n"
     "  // calcdb-status-ignored: reason given here\n"
     "  (void)f->Close();\n"
     "}\n"),
    ("status-never-read", True, "c.cc",
     "void F() { Status st; st = G(); }\n"),
    ("status-never-read", False, "c.cc",
     "Status F() { Status st; st = G(); return st; }\n"),
    ("status-never-read", False, "c.cc",
     "void F() { Status st = G(); if (!st.ok()) Abort(); }\n"),
    ("status-never-read", False, "c.cc",
     "void F() { Status st; Fill(&st); }\n"),
    ("fsync-before-rename", True, "d.cc",
     "bool F(const char* a, const char* b) {\n"
     "  return ::rename(a, b) == 0;\n"
     "}\n"),
    ("fsync-before-rename", False, "d.cc",
     "bool F(int fd, const char* a, const char* b) {\n"
     "  if (::fsync(fd) != 0) return false;\n"
     "  return std::rename(a, b) == 0;\n"
     "}\n"),
    ("fsync-before-rename", False, "d.cc",
     "bool F(Writer* w, const char* a, const char* b) {\n"
     "  if (!w->Sync().ok()) return false;\n"
     "  return std::rename(a, b) == 0;\n"
     "}\n"),
    ("raw-io", True, "e.cc",
     'void F() { std::FILE* f = std::fopen("x", "w"); (void)f; }\n'),
    ("raw-io", False, "util/throttled_file.cc",
     'void F() { std::FILE* f = std::fopen("x", "w"); (void)f; }\n'),
    ("raw-io", False, "e.cc",
     "void F() {\n"
     '  // lint:allow(raw-io): diagnostics sink, not durability-bearing\n'
     '  std::FILE* f = std::fopen("x", "w");\n'
     "  (void)f;\n"
     "}\n"),
    ("suppression-reason", True, "e.cc",
     "void F() {\n"
     "  // lint:allow(raw-io)\n"
     '  std::FILE* f = std::fopen("x", "w");\n'
     "  (void)f;\n"
     "}\n"),
    ("raw-stderr", True, "j.cc",
     'void F() { std::fprintf(stderr, "boom\\n"); }\n'),
    ("raw-stderr", True, "j.cc",
     'void F() { perror("boom"); }\n'),
    ("raw-stderr", True, "j.cc",
     'void F() { std::fputs("boom", stderr); }\n'),
    ("raw-stderr", False, "obs/event_log.cc",
     'void F() { std::fprintf(stderr, "boom\\n"); }\n'),
    ("raw-stderr", False, "j.cc",
     "void F() {\n"
     "  // lint:allow(raw-stderr): fatal path, aborts before any sink\n"
     '  std::fprintf(stderr, "boom\\n");\n'
     "  std::abort();\n"
     "}\n"),
    ("raw-stderr", False, "j.cc",
     'void F(std::FILE* f) { std::fprintf(f, "fine\\n"); }\n'),
    ("crash-point-coverage", True, "f.cc",
     "bool F(int fd) { return ::fsync(fd) == 0; }\n"),
    ("crash-point-coverage", False, "f.cc",
     "bool F(int fd) {\n"
     '  CALCDB_CRASH_POINT("test.registered");\n'
     "  return ::fsync(fd) == 0;\n"
     "}\n"),
    ("crash-point-coverage", False, "g.cc",
     "bool F() { return true; }\n"),
    # Regression: the whole tree lives inside `namespace calcdb { ... }`;
    # function-body detection must see through namespace braces.
    ("crash-point-coverage", True, "h.cc",
     "namespace calcdb {\n"
     "bool F(int fd) { return ::fsync(fd) == 0; }\n"
     "}  // namespace calcdb\n"),
    ("fsync-before-rename", True, "h.cc",
     "namespace calcdb {\n"
     "namespace {\n"
     "bool F(const char* a, const char* b) {\n"
     "  return std::rename(a, b) == 0;\n"
     "}\n"
     "}  // namespace\n"
     "}  // namespace calcdb\n"),
    # Regression: a Status member of a (function-local) aggregate is read
    # as obj.status outside the struct's scope — not a dead local.
    ("status-never-read", False, "i.cc",
     "void F() {\n"
     "  struct Seg {\n"
     "    Status status;\n"
     "  };\n"
     "  Seg s;\n"
     "  s.status = G();\n"
     "  if (!s.status.ok()) Abort();\n"
     "}\n"),
    ("status-never-read", True, "i.cc",
     "namespace calcdb {\n"
     "void F() { Status st = G(); }\n"
     "}  // namespace calcdb\n"),
]

SELF_TEST_REGISTRY = (
    "constexpr FaultPointInfo kRegistry[] = {\n"
    '    {"test.registered", "self-test stub"},\n'
    "};\n"
)


def self_test():
    import tempfile

    failures = []
    for idx, (rule, should_fire, filename, snippet) in enumerate(
            SELF_TEST_CASES):
        with tempfile.TemporaryDirectory() as tmp:
            hdr = os.path.join(tmp, "foo.h")
            with open(hdr, "w", encoding="utf-8") as f:
                f.write(SELF_TEST_HEADER)
            reg = os.path.join(tmp, "util", "fault_injection.cc")
            os.makedirs(os.path.dirname(reg), exist_ok=True)
            with open(reg, "w", encoding="utf-8") as f:
                f.write(SELF_TEST_REGISTRY +
                        'void R() { CALCDB_CRASH_POINT('
                        '"test.registered"); }\n')
            path = os.path.join(tmp, filename)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(snippet)
            status_fns = collect_status_functions(tmp) | {"G"}
            findings, _ = lint_file(path, tmp, status_fns)
            fired = {f.rule for f in findings}
        if should_fire and rule not in fired:
            failures.append(
                f"case {idx}: expected [{rule}] to fire on:\n{snippet}")
        if not should_fire and rule in fired:
            failures.append(
                f"case {idx}: [{rule}] fired unexpectedly on:\n{snippet}")
    if failures:
        print("lint_durability self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    print(f"lint_durability self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if "--fixtures" in argv:
        i = argv.index("--fixtures")
        if i + 1 >= len(argv):
            print("lint_durability: --fixtures needs a directory",
                  file=sys.stderr)
            return 2
        return run_fixtures(os.path.abspath(argv[i + 1]))
    paths = [a for a in argv if not a.startswith("-")]
    if not paths:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        paths = [os.path.join(repo_root, "src")]
    for p in paths:
        if not os.path.exists(p):
            print(f"lint_durability: no such file or directory: {p}",
                  file=sys.stderr)
            return 2
    findings = run_lint(paths)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_durability: {len(findings)} finding(s)")
        return 1
    print("lint_durability: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
