#!/usr/bin/env python3
"""Summarizes a calcdb trace JSON (obs::Tracer ExportJson output).

The export is Chrome/Perfetto trace_event format — load it in
https://ui.perfetto.dev (or chrome://tracing) for the interactive view.
This script is the no-browser companion: it validates the format and
prints, from the shell,

  * per-(category, name) event counts and duration stats for complete
    ('X') events, instant ('i') counts; the per-segment spans emitted by
    a parallel capture (capture.seg0, capture.seg1, ...) are grouped
    under one 'capture.seg*' row so a 16-way capture doesn't dominate
    the table (the timeline still shows each segment individually);
  * the checkpoint-phase timeline (cat=ckpt spans in time order), the
    CALC rest/prepare/resolve/capture/complete story of docs/PAPER.md
    Figure 1 as text.

Stdlib only.

Usage:
    trace_summary.py TRACE.json [--timeline] [--cat CAT]
Exit status: 0 ok, 1 malformed trace or I/O error.
"""

import json
import sys

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def load_events(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("top level must be {\"traceEvents\": [...]}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        missing = REQUIRED_KEYS - set(ev)
        if missing:
            raise ValueError(f"event {i} missing keys {sorted(missing)}")
        if ev["ph"] not in ("X", "i"):
            raise ValueError(f"event {i} has unknown phase {ev['ph']!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            raise ValueError(f"event {i} is 'X' but has no dur")
    return events


def fmt_us(us):
    if us >= 1000000:
        return f"{us / 1000000:.2f}s"
    if us >= 1000:
        return f"{us / 1000:.2f}ms"
    return f"{us}us"


def coalesce_name(name):
    """Table-row label for a span name: the per-segment capture spans of
    one parallel checkpoint ('capture.seg0' ... 'capture.seg15', overflow
    'capture.seg+') all report as a single 'capture.seg*' row."""
    if name.startswith("capture.seg"):
        return "capture.seg*"
    return name


def print_table(events):
    groups = {}
    for ev in events:
        key = (ev["cat"], coalesce_name(ev["name"]), ev["ph"])
        groups.setdefault(key, []).append(ev)
    print(f"{'cat':<10} {'name':<18} {'ph':<2} {'count':>7} "
          f"{'total':>10} {'mean':>10} {'max':>10}")
    for (cat, name, ph), evs in sorted(groups.items()):
        if ph == "X":
            durs = [ev["dur"] for ev in evs]
            print(f"{cat:<10} {name:<18} {ph:<2} {len(evs):>7} "
                  f"{fmt_us(sum(durs)):>10} "
                  f"{fmt_us(sum(durs) // len(durs)):>10} "
                  f"{fmt_us(max(durs)):>10}")
        else:
            print(f"{cat:<10} {name:<18} {ph:<2} {len(evs):>7} "
                  f"{'-':>10} {'-':>10} {'-':>10}")


def print_timeline(events, cat):
    spans = [ev for ev in events if ev["cat"] == cat and ev["ph"] == "X"]
    if not spans:
        print(f"\nno '{cat}' spans in trace")
        return
    spans.sort(key=lambda ev: ev["ts"])
    t0 = spans[0]["ts"]
    print(f"\n{cat} timeline (offsets from first span):")
    for ev in spans:
        arg = ev.get("args", {}).get("arg", "")
        print(f"  +{fmt_us(ev['ts'] - t0):>10}  {ev['name']:<18} "
              f"{fmt_us(ev['dur']):>10}  arg={arg}")


def main(argv):
    path = None
    cat = "ckpt"
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--cat" and i + 1 < len(argv):
            cat = argv[i + 1]
            i += 2
            continue
        if a.startswith("--cat="):
            cat = a.split("=", 1)[1]
        elif a == "--timeline":
            pass  # the timeline always prints; kept for compatibility
        elif not a.startswith("--") and path is None:
            path = a
        else:
            print(__doc__, file=sys.stderr)
            return 1
        i += 1
    if path is None:
        print(__doc__, file=sys.stderr)
        return 1
    try:
        events = load_events(path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    if not events:
        print("trace is valid but holds no events (was the tracer "
              "enabled? see docs/OBSERVABILITY.md)")
        return 0
    span = (max(ev["ts"] + ev.get("dur", 0) for ev in events) -
            min(ev["ts"] for ev in events))
    print(f"{path}: {len(events)} events over {fmt_us(span)} "
          f"(open in https://ui.perfetto.dev)\n")
    print_table(events)
    print_timeline(events, cat)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
