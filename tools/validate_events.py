#!/usr/bin/env python3
"""Validates calcdb structured-event JSONL against tools/events_schema.json.

The engine exports events as one JSON object per line (the --events_out
sink written by obs::EventLog, and EventLog::ExportJsonl dumps). An
empty file is valid: a clean run emits no events, and CI still uploads
the (empty) artifact.

Checks, per event line:

  * the line is a JSON object carrying exactly the schema's fields
    (ts_us/severity/name/cat/tid/suppressed/fields/detail);
  * severity is one of the schema's enumerated levels;
  * the name follows the "<subsystem>.<event>" convention and the
    category is a short lowercase tag (docs/OBSERVABILITY.md);
  * ts_us is a positive integer and the sequence is sane (monotone
    non-decreasing within a file up to a small reorder slack — the ring
    is multi-producer, so adjacent lines may swap by a few microseconds
    but a backwards jump of seconds means a corrupt dump);
  * tid and suppressed are non-negative integers;
  * `fields` is an object of integer values, at most max_fields entries,
    with lowercase keys.

Stdlib only — runs anywhere CI has a python3.

Usage:
    validate_events.py [--schema SCHEMA.json] FILE [FILE...]
    validate_events.py --self-test
Exit status: 0 valid, 1 findings (or self-test failure).
"""

import json
import os
import re
import sys

EVENT_FIELDS = ("ts_us", "severity", "name", "cat", "tid", "suppressed",
                "fields", "detail")

# Multi-producer ring: adjacent events may land slightly out of ts order.
REORDER_SLACK_US = 1_000_000


def default_schema_path():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "events_schema.json")


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def validate_event(ev, schema, where):
    errors = []

    def err(msg):
        errors.append(f"{where}: {msg}")

    if not isinstance(ev, dict):
        err("event is not a JSON object")
        return errors
    missing = [f for f in EVENT_FIELDS if f not in ev]
    extra = [f for f in ev if f not in EVENT_FIELDS]
    if missing:
        err(f"missing fields {missing}")
    if extra:
        err(f"unknown fields {extra}")
    if missing or extra:
        return errors

    if not is_int(ev["ts_us"]) or ev["ts_us"] <= 0:
        err(f"ts_us must be a positive integer, got {ev['ts_us']!r}")
    if ev["severity"] not in schema["severities"]:
        err(f"severity {ev['severity']!r} not in {schema['severities']}")
    name_re = re.compile(schema["name_pattern"])
    if not isinstance(ev["name"], str) or not name_re.match(ev["name"]):
        err(f"name {ev['name']!r} does not match {schema['name_pattern']}")
    cat_re = re.compile(schema["cat_pattern"])
    if not isinstance(ev["cat"], str) or not cat_re.match(ev["cat"]):
        err(f"cat {ev['cat']!r} does not match {schema['cat_pattern']}")
    if not is_int(ev["tid"]) or ev["tid"] < 0:
        err(f"tid must be a non-negative integer, got {ev['tid']!r}")
    if not is_int(ev["suppressed"]) or ev["suppressed"] < 0:
        err(f"suppressed must be a non-negative integer, "
            f"got {ev['suppressed']!r}")
    if not isinstance(ev["detail"], str):
        err(f"detail must be a string, got {ev['detail']!r}")
    fields = ev["fields"]
    if not isinstance(fields, dict):
        err(f"fields must be an object, got {fields!r}")
    else:
        if len(fields) > schema["max_fields"]:
            err(f"fields has {len(fields)} entries, schema allows at "
                f"most {schema['max_fields']}")
        key_re = re.compile(schema["key_pattern"])
        for k, v in fields.items():
            if not key_re.match(k):
                err(f"field key {k!r} does not match "
                    f"{schema['key_pattern']}")
            if not is_int(v):
                err(f"field '{k}' must be an integer, got {v!r}")
    return errors


def validate_file(path, schema):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    errors = []
    last_ts = None
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{path}:{i}"
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: not valid JSON ({e.msg})")
            continue
        errors.extend(validate_event(ev, schema, where))
        ts = ev.get("ts_us") if isinstance(ev, dict) else None
        if is_int(ts) and ts > 0:
            if last_ts is not None and ts < last_ts - REORDER_SLACK_US:
                errors.append(
                    f"{where}: ts_us jumps backwards by "
                    f"{last_ts - ts} us (> {REORDER_SLACK_US} slack): "
                    "dump is not a single run's event stream")
            last_ts = max(last_ts, ts) if last_ts is not None else ts
    return errors


# --------------------------------------------------------------------------
# Self-test: the validator must accept a known-good stream and reject
# each seeded corruption. Keeps CI's gate honest.
# --------------------------------------------------------------------------

GOOD = {
    "ts_us": 1700000000000000,
    "severity": "WARN",
    "name": "ckpt.gc_unlink_failed",
    "cat": "ckpt",
    "tid": 3,
    "suppressed": 0,
    "fields": {"errno": 2},
    "detail": "/tmp/ckpt_00000001.full",
}

SELF_TEST_CASES = [
    # (should_pass, mutation applied to a deep copy of GOOD)
    (True, lambda d: d),
    (False, lambda d: (d.pop("severity"), d)[1]),
    (False, lambda d: (d.update({"severity": "FATAL"}), d)[1]),
    (False, lambda d: (d.update({"name": "NoDotsHere"}), d)[1]),
    (False, lambda d: (d.update({"cat": "Not A Tag"}), d)[1]),
    (False, lambda d: (d.update({"ts_us": -5}), d)[1]),
    (False, lambda d: (d.update({"tid": "three"}), d)[1]),
    (False, lambda d: (d.update({"suppressed": -1}), d)[1]),
    (False, lambda d: (d.update({"fields": [1, 2]}), d)[1]),
    (False, lambda d: (d.update(
        {"fields": {"a": 1, "b": 2, "c": 3, "d": 4}}), d)[1]),
    (False, lambda d: (d["fields"].update({"errno": "ENOENT"}), d)[1]),
    (False, lambda d: (d.update({"detail": 7}), d)[1]),
    (False, lambda d: (d.update({"bogus": 1}), d)[1]),
]


def self_test():
    import copy
    import tempfile

    with open(default_schema_path(), encoding="utf-8") as f:
        schema = json.load(f)
    failures = []
    for idx, (should_pass, mutate) in enumerate(SELF_TEST_CASES):
        doc = mutate(copy.deepcopy(GOOD))
        errors = validate_event(doc, schema, f"case{idx}")
        if should_pass and errors:
            failures.append(f"case {idx}: expected valid, got: {errors}")
        if not should_pass and not errors:
            failures.append(f"case {idx}: corruption not detected")

    def file_case(label, content, should_pass):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            f.write(content)
            path = f.name
        try:
            errors = validate_file(path, schema)
        finally:
            os.unlink(path)
        if should_pass and errors:
            failures.append(f"{label}: expected valid, got: {errors}")
        if not should_pass and not errors:
            failures.append(f"{label}: corruption not detected")

    # An empty sink is a valid artifact of a clean run.
    file_case("empty file", "", True)
    file_case("jsonl stream",
              json.dumps(GOOD) + "\n" + json.dumps(GOOD) + "\n", True)
    backwards = dict(GOOD, ts_us=GOOD["ts_us"] - 10_000_000)
    file_case("backwards ts",
              json.dumps(GOOD) + "\n" + json.dumps(backwards) + "\n",
              False)
    file_case("garbage line", json.dumps(GOOD) + "\nnot json\n", False)

    if failures:
        print("validate_events self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"validate_events self-test: {len(SELF_TEST_CASES) + 4} "
          "cases ok")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    schema_path = default_schema_path()
    files = []
    i = 0
    while i < len(argv):
        if argv[i] == "--schema":
            if i + 1 >= len(argv):
                print("--schema needs a path", file=sys.stderr)
                return 1
            schema_path = argv[i + 1]
            i += 2
            continue
        files.append(argv[i])
        i += 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 1
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)
    all_errors = []
    for path in files:
        all_errors.extend(validate_file(path, schema))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"validate_events: {len(all_errors)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"validate_events: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
