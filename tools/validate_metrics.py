#!/usr/bin/env python3
"""Validates calcdb metrics JSON against tools/metrics_schema.json.

The engine exports metrics in two forms, both accepted here:

  * one JSON object per file — the bench binaries' --metrics_out dumps
    (bench/bench_common.h ExportMetricsJson);
  * one JSON object per line (JSONL) — obs::StatsReporter period dumps.

Checks, per snapshot object:

  * the four top-level sections (meta/counters/gauges/histograms) exist
    and are objects;
  * every metric name matches the schema's name_pattern (the
    "calcdb.<layer>.<name>" convention, docs/OBSERVABILITY.md);
  * counters are non-negative integers, gauges are integers;
  * histograms carry exactly the summary fields the exporter writes,
    with p50 <= p99 <= p999 <= max whenever count > 0;
  * the schema's required_* metric names are present (CI's smoke-run
    guard: an instrumentation layer that silently stops exporting fails
    the build rather than flat-lining a dashboard).

Stdlib only — runs anywhere CI has a python3.

Usage:
    validate_metrics.py [--schema SCHEMA.json] FILE [FILE...]
    validate_metrics.py --self-test
Exit status: 0 valid, 1 findings (or self-test failure).
"""

import json
import os
import re
import sys

HISTOGRAM_FIELDS = ("count", "mean_us", "p50_us", "p99_us", "p999_us",
                    "max_us")


def default_schema_path():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "metrics_schema.json")


def load_snapshots(path):
    """Returns ([snapshot_dict, ...], [error, ...]) for a file that is
    either a single JSON object or JSONL."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        return [json.loads(text)], []
    except json.JSONDecodeError:
        pass
    snapshots, errors = [], []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            snapshots.append(json.loads(line))
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: not valid JSON ({e.msg})")
    if not snapshots and not errors:
        errors.append("file holds no JSON object")
    return snapshots, errors


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def is_number(v):
    return is_int(v) or isinstance(v, float)


def validate_snapshot(snap, schema, where):
    errors = []

    def err(msg):
        errors.append(f"{where}: {msg}")

    if not isinstance(snap, dict):
        err("snapshot is not a JSON object")
        return errors
    for section in ("meta", "counters", "gauges", "histograms"):
        if section not in snap:
            err(f"missing top-level section '{section}'")
        elif not isinstance(snap[section], dict):
            err(f"section '{section}' is not an object")
    if errors:
        return errors

    name_re = re.compile(schema["name_pattern"])

    def check_name(section, name):
        if not name_re.match(name):
            err(f"{section} name '{name}' does not match "
                f"{schema['name_pattern']}")

    for name, value in snap["counters"].items():
        check_name("counter", name)
        if not is_int(value) or value < 0:
            err(f"counter '{name}' must be a non-negative integer, "
                f"got {value!r}")
    for name, value in snap["gauges"].items():
        check_name("gauge", name)
        if not is_int(value):
            err(f"gauge '{name}' must be an integer, got {value!r}")
    for name, h in snap["histograms"].items():
        check_name("histogram", name)
        if not isinstance(h, dict):
            err(f"histogram '{name}' is not an object")
            continue
        missing = [f for f in HISTOGRAM_FIELDS if f not in h]
        extra = [f for f in h if f not in HISTOGRAM_FIELDS]
        if missing:
            err(f"histogram '{name}' missing fields {missing}")
        if extra:
            err(f"histogram '{name}' has unknown fields {extra}")
        if missing or extra:
            continue
        fields_ok = True
        for f in HISTOGRAM_FIELDS:
            if f == "mean_us":
                if not is_number(h[f]) or h[f] < 0:
                    err(f"histogram '{name}.{f}' must be a number >= 0, "
                        f"got {h[f]!r}")
                    fields_ok = False
            elif not is_int(h[f]) or h[f] < 0:
                err(f"histogram '{name}.{f}' must be a non-negative "
                    f"integer, got {h[f]!r}")
                fields_ok = False
        if not fields_ok:
            continue
        if h["count"] > 0 and not (
                h["p50_us"] <= h["p99_us"] <= h["p999_us"] <= h["max_us"]):
            err(f"histogram '{name}' percentiles out of order: "
                f"p50={h['p50_us']} p99={h['p99_us']} "
                f"p999={h['p999_us']} max={h['max_us']}")

    for name in schema.get("required_counters", ()):
        if name not in snap["counters"]:
            err(f"required counter '{name}' absent")
    for name in schema.get("required_gauges", ()):
        if name not in snap["gauges"]:
            err(f"required gauge '{name}' absent")
    for name in schema.get("required_histograms", ()):
        if name not in snap["histograms"]:
            err(f"required histogram '{name}' absent")
    return errors


def validate_file(path, schema):
    snapshots, errors = load_snapshots(path)
    errors = [f"{path}: {e}" for e in errors]
    for i, snap in enumerate(snapshots):
        where = path if len(snapshots) == 1 else f"{path} (snapshot {i})"
        errors.extend(validate_snapshot(snap, schema, where))
    return errors


# --------------------------------------------------------------------------
# Self-test: the validator must accept a known-good document and reject
# each seeded corruption. Keeps CI's gate honest.
# --------------------------------------------------------------------------

GOOD = {
    "meta": {"bench": "fig2_full_microbench", "ts_us": "12345"},
    "counters": {"calcdb.txn.committed": 100, "calcdb.log.appends": 100,
                 "calcdb.ckpt.CALC.cycles": 2},
    "gauges": {"calcdb.memory.value_bytes": 4096},
    "histograms": {
        "calcdb.txn.lock_wait_us":
            {"count": 100, "mean_us": 1.5, "p50_us": 1, "p99_us": 9,
             "p999_us": 12, "max_us": 15},
    },
}

SELF_TEST_CASES = [
    # (should_pass, mutation applied to a deep copy of GOOD)
    (True, lambda d: d),
    (False, lambda d: (d.pop("counters"), d)[1]),
    (False, lambda d: (d["counters"].pop("calcdb.txn.committed"), d)[1]),
    (False, lambda d: (d["counters"].update(
        {"calcdb.txn.committed": -1}), d)[1]),
    (False, lambda d: (d["counters"].update({"not a metric": 1}), d)[1]),
    (False, lambda d: (d["gauges"].update(
        {"calcdb.memory.value_bytes": "big"}), d)[1]),
    (False, lambda d: (d["histograms"]["calcdb.txn.lock_wait_us"].pop(
        "p999_us"), d)[1]),
    (False, lambda d: (d["histograms"]["calcdb.txn.lock_wait_us"].update(
        {"p50_us": 99}), d)[1]),
    (False, lambda d: (d["histograms"].pop("calcdb.txn.lock_wait_us"), d)[1]),
]


def self_test():
    import copy
    import tempfile

    with open(default_schema_path(), encoding="utf-8") as f:
        schema = json.load(f)
    failures = []
    for idx, (should_pass, mutate) in enumerate(SELF_TEST_CASES):
        doc = mutate(copy.deepcopy(GOOD))
        errors = validate_snapshot(doc, schema, f"case{idx}")
        if should_pass and errors:
            failures.append(f"case {idx}: expected valid, got: {errors}")
        if not should_pass and not errors:
            failures.append(f"case {idx}: corruption not detected")
    # JSONL round-trip through a real file.
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                     delete=False) as f:
        f.write(json.dumps(GOOD) + "\n" + json.dumps(GOOD) + "\n")
        path = f.name
    try:
        errors = validate_file(path, schema)
        if errors:
            failures.append(f"jsonl case: expected valid, got: {errors}")
    finally:
        os.unlink(path)
    if failures:
        print("validate_metrics self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"validate_metrics self-test: {len(SELF_TEST_CASES) + 1} "
          "cases ok")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    schema_path = default_schema_path()
    files = []
    i = 0
    while i < len(argv):
        if argv[i] == "--schema":
            if i + 1 >= len(argv):
                print("--schema needs a path", file=sys.stderr)
                return 1
            schema_path = argv[i + 1]
            i += 2
            continue
        files.append(argv[i])
        i += 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 1
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)
    all_errors = []
    for path in files:
        all_errors.extend(validate_file(path, schema))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"validate_metrics: {len(all_errors)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"validate_metrics: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
