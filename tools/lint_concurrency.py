#!/usr/bin/env python3
"""Repo-specific concurrency invariant linter for calcdb.

Enforces rules no off-the-shelf tool knows about this codebase (see
ISSUE/CONTRIBUTING "Correctness tooling"):

  atomic-explicit-order   Every std::atomic access and atomic_thread_fence
                          names an explicit std::memory_order. Implicit
                          seq_cst hides the author's intent and makes
                          relaxed-by-accident regressions unreviewable.
  refcount-acq-rel        fetch_sub on a refcount member (refs_, *refcount*)
                          must be memory_order_acq_rel or seq_cst: the
                          freeing thread has to synchronize with every other
                          thread's final reads (src/storage/value.h).
  naked-lock              Direct .Lock()/.Unlock()/.LockShared()/
                          .UnlockShared() calls outside src/util/latch.h
                          must sit in a function annotated with
                          CALCDB_ACQUIRE/CALCDB_RELEASE/
                          CALCDB_NO_THREAD_SAFETY_ANALYSIS (clang's analysis
                          or its documented opt-out), or carry a
                          naked-lock-ok(<reason>) comment. Everything else
                          uses SpinLatchGuard. Recognizes per-shard latch
                          members — lock calls on indexed latch-array
                          elements (stripes_[shard][stripe].Lock() and kin,
                          txn/lock_manager.h) — and reminds about the
                          (shard, stripe) lexicographic acquisition order
                          those arrays require.
  phase-token-latch       PhaseController::SetPhase is only called from
                          CommitLog::AppendPhaseTransition (under the
                          commit-log latch): phase visibility must be atomic
                          with the token append (paper §2.2). Matches
                          member, indexed per-shard controller
                          (phases_[s]->SetPhase) and implicit-this
                          spellings.
  header-guard            Header guards follow CALCDB_<PATH>_<FILE>_H_
                          with a matching trailing '#endif  // GUARD'.
  include-hygiene         Project includes are root-relative (no "../", no
                          "src/" prefix), no 'using namespace' at file
                          scope, and files touching std::atomic/std::thread/
                          std::mutex include the matching standard header
                          themselves.
  obs-relaxed-order       Observability code (src/obs/) must not add memory
                          fences to the code paths it measures: no
                          memory_order_seq_cst anywhere, and counter-style
                          RMWs (fetch_add/fetch_sub) must be
                          memory_order_relaxed. Acquire/release is allowed
                          for loads/stores/exchange (the trace-ring seqlock
                          and reporter-thread handshakes need it).
  crash-point-registered  Every name passed to CALCDB_CRASH_POINT /
                          CALCDB_FAULT_STATUS / CALCDB_FAULT_POINT must
                          appear in the registry in
                          src/util/fault_injection.cc: an unregistered
                          probe would abort at arm time and can't be
                          covered by the torture matrix or documented in
                          docs/DURABILITY.md's survival table.

A finding can be waived per line with a trailing comment:
    // lint:allow(<rule-id>): <justification>

Fixture mode: `--fixtures <dir>` lints every .cc/.h under <dir>, where
each file's leading `// expect-lint: <rules...>` header declares the
exact rule set that must fire on it (`none` for a clean exemplar); any
mismatch in either direction fails the run.

Usage:
    lint_concurrency.py [--self-test] [--fixtures dir] [paths...]
Paths default to the src/ directory next to this script's repo root.
Exit status: 0 clean, 1 findings (or self-test/fixture failure).
"""

import os
import re
import sys

ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)

ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)(" + "|".join(ATOMIC_OPS) + r")\s*\(|"
    r"\batomic_thread_fence\s*\("
)
LOCK_CALL_RE = re.compile(
    r"(?:\.|->)(Lock|Unlock|LockShared|UnlockShared)\s*\(\s*\)"
)
REFCOUNT_SUB_RE = re.compile(
    r"(?:\.|->)?(\w*(?:refs?_|refcount\w*|ref_count\w*))\s*"
    r"(?:\.|->)fetch_sub\s*\("
)
# Member calls (pc->SetPhase, phases_[s].SetPhase) and implicit-this
# calls (SetPhase(...) inside a controller method). The 1-char negative
# lookbehind still admits '.' and '>' receivers while rejecting both
# longer identifiers (MySetPhase) and '::'-qualified out-of-line
# definitions.
SET_PHASE_RE = re.compile(r"(?<![\w:])SetPhase\s*\(")
ANNOTATION_RE = re.compile(
    r"CALCDB_(?:NO_THREAD_SAFETY_ANALYSIS|ACQUIRE|RELEASE|"
    r"ACQUIRE_SHARED|RELEASE_SHARED|TRY_ACQUIRE)"
)
ALLOW_RE = re.compile(r"lint:allow\((?P<rule>[\w-]+)\)|naked-lock-ok\(")

# How far back (lines) a thread-safety annotation on the enclosing
# function's signature may sit from a naked lock call.
ANNOTATION_LOOKBACK = 25

STD_HEADER_FOR = {
    re.compile(r"\bstd::atomic\b|\batomic_thread_fence\b"): "<atomic>",
    re.compile(r"\bstd::thread\b|\bstd::this_thread\b"): "<thread>",
    re.compile(r"\bstd::mutex\b|\bstd::condition_variable\b|"
               r"\bstd::lock_guard\b|\bstd::unique_lock\b"): "<mutex>",
}


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving layout.

    Returns (code, raw_lines) where `code` has the same line structure as
    `text` but with comment/string contents replaced by spaces, so regexes
    can't match inside them and line numbers stay aligned.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    code = "".join(out)
    return code, text.splitlines()


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def call_args(code, open_paren_pos):
    """Returns the argument text of the call whose '(' is at the given
    position, following nested parens across lines. None if unbalanced."""
    depth = 0
    for i in range(open_paren_pos, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren_pos + 1 : i]
    return None


def waived(raw_lines, lineno, rule):
    if lineno - 1 >= len(raw_lines):
        return False
    for probe in (lineno - 1, lineno):  # the line itself or the one above
        if 0 <= probe - 1 < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[probe - 1])
            if m and (m.group("rule") in (None, rule) or
                      m.group(0).startswith("naked-lock-ok")):
                return True
    return False


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def check_atomic_order(path, code, raw_lines):
    findings = []
    for m in ATOMIC_CALL_RE.finditer(code):
        open_paren = code.index("(", m.end() - 1)
        args = call_args(code, open_paren)
        lineno = line_of(code, m.start())
        if args is None:
            continue  # unbalanced (macro soup); don't guess
        op = m.group(1) or "atomic_thread_fence"
        if op == "store" and "memory_order" not in args:
            # Heuristic guard against non-atomic .store() members is not
            # needed in this repo: the only store() methods are atomics'.
            pass
        if "memory_order" not in args:
            if not waived(raw_lines, lineno, "atomic-explicit-order"):
                findings.append(Finding(
                    path, lineno, "atomic-explicit-order",
                    f"atomic '{op}' without an explicit std::memory_order "
                    "argument (implicit seq_cst hides intent; spell it "
                    "out)"))
    return findings


def check_refcount_order(path, code, raw_lines):
    findings = []
    for m in REFCOUNT_SUB_RE.finditer(code):
        open_paren = code.index("(", m.end() - 1)
        args = call_args(code, open_paren)
        lineno = line_of(code, m.start())
        if args is None:
            continue
        if ("memory_order_acq_rel" not in args and
                "memory_order_seq_cst" not in args):
            if not waived(raw_lines, lineno, "refcount-acq-rel"):
                findings.append(Finding(
                    path, lineno, "refcount-acq-rel",
                    f"refcount decrement on '{m.group(1)}' must be "
                    "memory_order_acq_rel or stronger: the freeing thread "
                    "must synchronize with all other threads' final reads "
                    "(see src/storage/value.h)"))
    return findings


OBS_RMW_RE = re.compile(r"[.\s>](fetch_add|fetch_sub)\s*\(")


def check_obs_relaxed(path, code, raw_lines):
    norm = path.replace(os.sep, "/")
    if "/obs/" not in norm and not norm.startswith("obs/"):
        return []
    findings = []
    for m in re.finditer(r"\bmemory_order_seq_cst\b", code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "obs-relaxed-order"):
            continue
        findings.append(Finding(
            path, lineno, "obs-relaxed-order",
            "memory_order_seq_cst in obs instrumentation: the "
            "observability hot path must not insert full fences into the "
            "code it measures (use relaxed, or acquire/release for the "
            "trace-ring seqlock)"))
    for m in OBS_RMW_RE.finditer(code):
        open_paren = code.index("(", m.end() - 1)
        args = call_args(code, open_paren)
        lineno = line_of(code, m.start())
        if args is None:
            continue
        if "memory_order_relaxed" not in args:
            if not waived(raw_lines, lineno, "obs-relaxed-order"):
                findings.append(Finding(
                    path, lineno, "obs-relaxed-order",
                    f"obs counter '{m.group(1)}' must be "
                    "memory_order_relaxed: metrics are monotonic sums read "
                    "via independent per-slot loads, so any stronger order "
                    "only taxes the instrumented path"))
    return findings


def receiver_is_indexed(code, match_start):
    """True when the lock call's receiver is an indexed array element
    (a per-shard / striped latch array: stripes_[shard][stripe].Lock()).
    Skims back over whitespace to the character before the '.'/'->'."""
    i = match_start - 1
    while i >= 0 and code[i] in " \t\n":
        i -= 1
    return i >= 0 and code[i] == "]"


def check_naked_lock(path, code, raw_lines):
    if path.replace(os.sep, "/").endswith("util/latch.h"):
        return []  # the primitive's own definition
    findings = []
    code_lines = code.splitlines()
    for m in LOCK_CALL_RE.finditer(code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "naked-lock"):
            continue
        lo = max(0, lineno - 1 - ANNOTATION_LOOKBACK)
        context = "\n".join(code_lines[lo:lineno])
        if ANNOTATION_RE.search(context):
            continue
        if receiver_is_indexed(code, m.start()):
            findings.append(Finding(
                path, lineno, "naked-lock",
                f"naked {m.group(1)}() on an indexed per-shard latch "
                "member: striped latch arrays are acquired in (shard, "
                "stripe) lexicographic order from annotated LockManager "
                "methods only (txn/lock_manager.h); annotate the "
                "enclosing function with CALCDB_ACQUIRE/CALCDB_RELEASE/"
                "CALCDB_NO_THREAD_SAFETY_ANALYSIS or add "
                "// naked-lock-ok(<reason>)"))
            continue
        findings.append(Finding(
            path, lineno, "naked-lock",
            f"naked {m.group(1)}() call: use SpinLatchGuard, or annotate "
            "the enclosing function with CALCDB_ACQUIRE/CALCDB_RELEASE/"
            "CALCDB_NO_THREAD_SAFETY_ANALYSIS, or add "
            "// naked-lock-ok(<reason>)"))
    return findings


FAULT_MACRO_RE = re.compile(
    r'CALCDB_(?:CRASH_POINT|FAULT_STATUS|FAULT_POINT)\s*\(\s*"')


def load_fault_registry(root):
    """Returns the set of registered crash-point names parsed out of
    util/fault_injection.cc under `root`, or None if unavailable."""
    path = os.path.join(root, "util", "fault_injection.cc")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return None
    m = re.search(r"kRegistry\[\]\s*=\s*\{(.*?)\n\};", text, re.S)
    if not m:
        return None
    return set(re.findall(r'\{\s*"([^"]+)"', m.group(1)))


def check_crash_point_registered(path, code, raw_lines, root):
    norm = path.replace(os.sep, "/")
    if norm.endswith(("util/fault_injection.h", "util/fault_injection.cc")):
        return []  # the macro definitions / the registry itself
    if not FAULT_MACRO_RE.search(code):
        return []
    registry = load_fault_registry(root)
    # `code` blanks string contents but preserves every offset, so the
    # probe name is read from the raw text at the matched quote position
    # (matching raw lines directly would also fire on prose in comments).
    raw = "\n".join(raw_lines)
    findings = []
    for m in FAULT_MACRO_RE.finditer(code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "crash-point-registered"):
            continue
        if registry is None:
            findings.append(Finding(
                path, lineno, "crash-point-registered",
                "fault probe used but util/fault_injection.cc's registry "
                "was not found under the lint root"))
            continue
        quote = m.end() - 1
        close = raw.find('"', quote + 1)
        name = raw[quote + 1:close] if close != -1 else ""
        if name not in registry:
            findings.append(Finding(
                path, lineno, "crash-point-registered",
                f'crash point "{name}" is not in the kRegistry table of '
                "src/util/fault_injection.cc: register it (and document "
                "it in docs/DURABILITY.md, and cover it in the torture "
                "matrix) or fix the typo"))
    return findings


def check_phase_token(path, code, raw_lines):
    norm = path.replace(os.sep, "/")
    if norm.endswith("log/commit_log.cc"):
        return []  # the one sanctioned call site (under the log latch)
    if norm.endswith("checkpoint/phase.h"):
        return []  # the method's own declaration/definition
    findings = []
    for m in SET_PHASE_RE.finditer(code):
        lineno = line_of(code, m.start())
        if waived(raw_lines, lineno, "phase-token-latch"):
            continue
        findings.append(Finding(
            path, lineno, "phase-token-latch",
            "SetPhase() outside CommitLog::AppendPhaseTransition: phase "
            "transitions — per-shard controllers included — must be "
            "written under the commit-log latch, atomically with their "
            "log token (paper §2.2; see src/checkpoint/phase.h)"))
    return findings


def expected_guard(path, root):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    token = re.sub(r"[^A-Za-z0-9]", "_", rel).upper()
    return f"CALCDB_{token}_"


def check_header_guard(path, code, raw_lines, root):
    if not path.endswith(".h"):
        return []
    guard = expected_guard(path, root)
    directives = [(i + 1, ln.strip()) for i, ln in enumerate(raw_lines)
                  if ln.lstrip().startswith("#")]
    findings = []
    if (len(directives) < 2 or
            directives[0][1] != f"#ifndef {guard}" or
            directives[1][1] != f"#define {guard}"):
        findings.append(Finding(
            path, directives[0][0] if directives else 1, "header-guard",
            f"header guard must open with '#ifndef {guard}' / "
            f"'#define {guard}'"))
    tail = [ln.strip() for ln in raw_lines if ln.strip()]
    if not tail or tail[-1] != f"#endif  // {guard}":
        findings.append(Finding(
            path, len(raw_lines), "header-guard",
            f"header must close with '#endif  // {guard}'"))
    return findings


def check_include_hygiene(path, code, raw_lines):
    findings = []
    includes = []
    for i, ln in enumerate(raw_lines):
        m = re.match(r'\s*#include\s+(["<][^">]+[">])', ln)
        if m:
            includes.append((i + 1, m.group(1)))
    for lineno, inc in includes:
        if inc.startswith('"../') or '/../' in inc:
            findings.append(Finding(
                path, lineno, "include-hygiene",
                f"relative include {inc}: include project headers "
                "root-relative (e.g. \"checkpoint/calc.h\")"))
        elif inc.startswith('"src/'):
            findings.append(Finding(
                path, lineno, "include-hygiene",
                f"include {inc} must not carry the src/ prefix"))
    for m in re.finditer(r"^\s*using\s+namespace\s+\w", code, re.M):
        lineno = line_of(code, m.start())
        if not waived(raw_lines, lineno, "include-hygiene"):
            findings.append(Finding(
                path, lineno, "include-hygiene",
                "'using namespace' is banned in src/"))
    included = {inc for _, inc in includes}
    for pattern, header in STD_HEADER_FOR.items():
        if pattern.search(code) and header not in included:
            findings.append(Finding(
                path, 1, "include-hygiene",
                f"uses {pattern.pattern.split('|')[0].strip(chr(92)+'b')} "
                f"but does not include {header} itself (no transitive "
                "includes for threading primitives)"))
    return findings


def lint_file(path, root):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code, raw_lines = strip_comments_and_strings(text)
    findings = []
    findings += check_atomic_order(path, code, raw_lines)
    findings += check_refcount_order(path, code, raw_lines)
    findings += check_naked_lock(path, code, raw_lines)
    findings += check_phase_token(path, code, raw_lines)
    findings += check_header_guard(path, code, raw_lines, root)
    findings += check_include_hygiene(path, code, raw_lines)
    findings += check_obs_relaxed(path, code, raw_lines)
    findings += check_crash_point_registered(path, code, raw_lines, root)
    return findings


def lint_tree(root):
    findings = []
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                findings.extend(lint_file(os.path.join(dirpath, name),
                                          root))
    return findings


# --------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on
# the compliant twin. Guards the linter against silent rot.
# --------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule, should_fire, filename, snippet)
    ("atomic-explicit-order", True, "a.cc",
     "void F() { x_.store(1); }\n"),
    ("atomic-explicit-order", True, "a.cc",
     "void F() { n = x_.fetch_add(\n      1); }\n"),
    ("atomic-explicit-order", False, "a.cc",
     "void F() { x_.store(1, std::memory_order_release); }\n"),
    ("atomic-explicit-order", False, "a.cc",
     "void F() { n = x_.fetch_add(\n"
     "      1, std::memory_order_relaxed); }\n"),
    ("atomic-explicit-order", False, "a.cc",
     "// comment: x_.store(1) in prose\n"),
    ("refcount-acq-rel", True, "b.cc",
     "void F(V* v) { v->refs_.fetch_sub(1, std::memory_order_relaxed); }\n"),
    ("refcount-acq-rel", True, "b.cc",
     "void F(V* v) { v->refs_.fetch_sub(1, std::memory_order_release); }\n"),
    ("refcount-acq-rel", False, "b.cc",
     "void F(V* v) { v->refs_.fetch_sub(1, std::memory_order_acq_rel); }\n"),
    ("naked-lock", True, "c.cc",
     "void F() { latch_.Lock(); latch_.Unlock(); }\n"),
    ("naked-lock", False, "c.cc",
     "void F() CALCDB_NO_THREAD_SAFETY_ANALYSIS {\n"
     "  latch_.Lock();\n  latch_.Unlock();\n}\n"),
    ("naked-lock", False, "c.cc",
     "void F() {\n  latch_.Lock();  // naked-lock-ok(guard type itself)\n"
     "  latch_.Unlock();  // naked-lock-ok(guard type itself)\n}\n"),
    ("naked-lock", True, "c.cc",
     "void F(size_t s, size_t j) { stripes_[s][j].Lock(); }\n"),
    ("naked-lock", True, "c.cc",
     "void F(const StripeLock& sl) {\n"
     "  shards_[sl.shard][sl.stripe]\n      .LockShared();\n}\n"),
    ("naked-lock", False, "c.cc",
     "void F(const LockSet& set) CALCDB_NO_THREAD_SAFETY_ANALYSIS {\n"
     "  for (const StripeLock& sl : set) {\n"
     "    shards_[sl.shard][sl.stripe].Lock();\n"
     "  }\n}\n"),
    ("phase-token-latch", True, "checkpoint/x.cc",
     "void F(PhaseController* pc) { pc->SetPhase(Phase::kRest); }\n"),
    ("phase-token-latch", True, "checkpoint/x.cc",
     "void F(uint32_t s) { phases_[s]->SetPhase(Phase::kRest); }\n"),
    ("phase-token-latch", True, "checkpoint/x.cc",
     "void PhaseFanout::F(Phase p) { SetPhase(p); }\n"),
    ("phase-token-latch", False, "checkpoint/x.cc",
     "void F(PhaseController* pc) { pc->MySetPhase(Phase::kRest); }\n"),
    ("phase-token-latch", False, "checkpoint/phase.h",
     "#ifndef CALCDB_CHECKPOINT_PHASE_H_\n"
     "#define CALCDB_CHECKPOINT_PHASE_H_\n"
     "class PhaseController {\n"
     " public:\n  void SetPhase(Phase p) { phase_ = p; }\n};\n"
     "#endif  // CALCDB_CHECKPOINT_PHASE_H_\n"),
    ("phase-token-latch", False, "log/commit_log.cc",
     "void F(PhaseController* pc) { pc->SetPhase(Phase::kRest); }\n"),
    ("header-guard", True, "util/bad.h",
     "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n"
     "#endif  // WRONG_GUARD_H_\n"),
    ("header-guard", False, "util/good.h",
     "#ifndef CALCDB_UTIL_GOOD_H_\n#define CALCDB_UTIL_GOOD_H_\n"
     "#endif  // CALCDB_UTIL_GOOD_H_\n"),
    ("include-hygiene", True, "d.cc",
     '#include "../util/latch.h"\n'),
    ("include-hygiene", True, "d.cc",
     "#include <vector>\nusing namespace std;\n"),
    ("include-hygiene", True, "d.cc",
     "#include <cstdint>\nstd::atomic<int> x;\n"),
    ("include-hygiene", False, "d.cc",
     '#include <atomic>\n#include "util/latch.h"\nstd::atomic<int> x;\n'),
    ("obs-relaxed-order", True, "obs/e.cc",
     "void F() { c_.fetch_add(1, std::memory_order_seq_cst); }\n"),
    ("obs-relaxed-order", True, "obs/e.cc",
     "void F() { c_.fetch_add(1, std::memory_order_acq_rel); }\n"),
    ("obs-relaxed-order", False, "obs/e.cc",
     "void F() {\n  c_.fetch_add(1, std::memory_order_relaxed);\n"
     "  seq_.store(2, std::memory_order_release);\n"
     "  bool was = running_.exchange(false, std::memory_order_acq_rel);\n"
     "  (void)was;\n}\n"),
    ("obs-relaxed-order", False, "txn/e.cc",
     "void F() { c_.fetch_add(1, std::memory_order_seq_cst); }\n"),
    ("crash-point-registered", True, "checkpoint/f.cc",
     'void F() { CALCDB_CRASH_POINT("never.registered"); }\n'),
    ("crash-point-registered", True, "checkpoint/f.cc",
     'Status F() {\n'
     '  CALCDB_FAULT_POINT("also.unknown");\n'
     '  return Status::OK();\n}\n'),
    ("crash-point-registered", False, "checkpoint/f.cc",
     'void F() { CALCDB_CRASH_POINT("test.registered"); }\n'),
    ("crash-point-registered", False, "checkpoint/f.cc",
     'Status F() { return CALCDB_FAULT_STATUS("test.registered"); }\n'),
    ("crash-point-registered", False, "checkpoint/f.cc",
     '// prose: CALCDB_CRASH_POINT("never.registered") in a comment\n'),
]

# A minimal registry seeded next to every self-test snippet so the
# crash-point-registered rule has something to resolve against.
SELF_TEST_REGISTRY = (
    "constexpr FaultPointInfo kRegistry[] = {\n"
    '    {"test.registered", "self-test stub"},\n'
    "};\n"
)


def self_test():
    import tempfile

    failures = []
    for idx, (rule, should_fire, filename, snippet) in enumerate(
            SELF_TEST_CASES):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, filename)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(snippet)
            registry_path = os.path.join(tmp, "util", "fault_injection.cc")
            os.makedirs(os.path.dirname(registry_path), exist_ok=True)
            with open(registry_path, "w", encoding="utf-8") as f:
                f.write(SELF_TEST_REGISTRY)
            fired = {f.rule for f in lint_file(path, tmp)}
        if should_fire and rule not in fired:
            failures.append(
                f"case {idx}: expected [{rule}] to fire on:\n{snippet}")
        if not should_fire and rule in fired:
            failures.append(
                f"case {idx}: [{rule}] fired unexpectedly on:\n{snippet}")
    if failures:
        print("lint_concurrency self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    print(f"lint_concurrency self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


CONCURRENCY_RULES = {
    "atomic-explicit-order", "refcount-acq-rel", "naked-lock",
    "phase-token-latch", "header-guard", "include-hygiene",
    "obs-relaxed-order", "crash-point-registered",
}

EXPECT_RE = re.compile(r"expect-lint:\s*([\w\- ]+)")


def run_fixtures(fixture_dir):
    """Every fixture file must fire exactly its declared rule set."""
    failures = []
    checked = 0
    for dirpath, _, filenames in os.walk(fixture_dir):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                head = f.read(4096)
            m = EXPECT_RE.search(head)
            if not m:
                failures.append(
                    f"{path}: missing '// expect-lint:' header")
                continue
            expected = set(m.group(1).split()) - {"none"}
            unknown = expected - CONCURRENCY_RULES
            if unknown:
                failures.append(
                    f"{path}: unknown rule(s) {sorted(unknown)}")
                continue
            findings = lint_file(path, fixture_dir)
            fired = {f.rule for f in findings}
            if fired != expected:
                failures.append(
                    f"{path}: expected {sorted(expected) or ['none']}, "
                    f"fired {sorted(fired) or ['none']}:\n    " +
                    "\n    ".join(str(f) for f in findings))
            checked += 1
    if failures:
        print("lint_concurrency fixtures FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint_concurrency fixtures: {checked} file(s) behaved as "
          "declared")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if "--fixtures" in argv:
        idx = argv.index("--fixtures")
        if idx + 1 >= len(argv):
            print("lint_concurrency: --fixtures needs a directory",
                  file=sys.stderr)
            return 2
        return run_fixtures(argv[idx + 1])
    paths = [a for a in argv if not a.startswith("-")]
    if not paths:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        paths = [os.path.join(repo_root, "src")]
    findings = []
    for p in paths:
        if os.path.isdir(p):
            findings.extend(lint_tree(p))
        elif os.path.isfile(p):
            # Header-guard paths are relative to the source root: walk up
            # to the nearest 'src' ancestor so `lint_concurrency.py
            # src/util/latch.h` expects CALCDB_UTIL_LATCH_H_, matching
            # directory mode.
            root = os.path.dirname(os.path.abspath(p))
            parts = root.split(os.sep)
            if "src" in parts:
                cut = len(parts) - 1 - parts[::-1].index("src")
                root = os.sep.join(parts[:cut + 1])
            findings.extend(lint_file(p, root))
        else:
            print(f"lint_concurrency: no such file or directory: {p}",
                  file=sys.stderr)
            return 2
    for f in findings:
        print(f)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)")
        return 1
    print("lint_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
