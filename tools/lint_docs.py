#!/usr/bin/env python3
"""Doc-drift guards: mechanically diff documentation claims against code.

Two checks, each runnable alone (both run by default):

  options-table       docs/RECOVERY.md §6 lists the recovery/replay
                      Options knobs as a table of (name, default). Every
                      row must name a real field of calcdb::Options in
                      src/db/options.h with *exactly* the declared
                      default, and a required set of recovery-relevant
                      fields must all be present in the table — so a
                      renamed knob, a changed default, or a dropped row
                      fails the build instead of silently lying.

  crash-matrix        EXPERIMENTS.md's crash-matrix section claims "The
                      enumerated matrix (N entries) covers all M
                      registered points". N must equal the number of
                      entries in kMatrix (tests/crash_torture_test.cc)
                      and M the number of points in kRegistry
                      (src/util/fault_injection.cc).

Usage:
    lint_docs.py [--self-test] [--check options-table|crash-matrix] [root]
Root defaults to the repository containing this script.
Exit status: 0 clean, 1 findings (or self-test failure).
"""

import os
import re
import sys
import tempfile

# Fields whose rows must be present in the RECOVERY.md table; other
# Options fields may appear too (they are validated the same way).
REQUIRED_OPTIONS = [
    "checkpoint_dir",
    "ckpt_read_ahead_bytes",
    "recovery_threads",
    "replay_threads",
    "storage_shards",
    "log_read_ahead_bytes",
    "command_log_path",
    "command_log_flush_ms",
]

OPTIONS_HEADER = os.path.join("src", "db", "options.h")
RECOVERY_DOC = os.path.join("docs", "RECOVERY.md")
EXPERIMENTS_DOC = "EXPERIMENTS.md"
TORTURE_TEST = os.path.join("tests", "crash_torture_test.cc")
FAULT_REGISTRY = os.path.join("src", "util", "fault_injection.cc")


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read()


def normalize(expr):
    """Comparison form of a default-value expression: whitespace-free."""
    return re.sub(r"\s+", "", expr)


def parse_options_struct(text):
    """Field -> default-value text for `struct Options { ... };`.

    Understands the two declaration shapes the struct uses:
    `type name = default;` and `type name;` (no initializer — default
    constructed; reported as "" for std::string, 0 otherwise).
    """
    match = re.search(r"struct Options \{(.*)\n\};", text, re.DOTALL)
    if match is None:
        return None
    body = match.group(1)
    # Drop comments so commented-out examples can't parse as fields.
    body = re.sub(r"//[^\n]*", "", body)
    fields = {}
    for decl in re.finditer(
        r"^\s*([A-Za-z_][\w:<>]*(?:\s+[\w:<>]+)*)\s+(\w+)\s*"
        r"(?:=\s*([^;]+?))?\s*;",
        body,
        re.MULTILINE,
    ):
        type_text, name, default = decl.groups()
        if default is None:
            default = '""' if "string" in type_text else "0"
        fields[name] = default.strip()
    return fields


def parse_doc_table(text):
    """(name, default) rows of the §6 knobs table in RECOVERY.md."""
    rows = []
    for line in text.splitlines():
        m = re.match(r"\|\s*`(\w+)`\s*\|\s*`([^`]*)`\s*\|", line)
        if m:
            rows.append((m.group(1), m.group(2)))
    return rows


def check_options_table(root):
    errors = []
    fields = parse_options_struct(read(root, OPTIONS_HEADER))
    if fields is None:
        return [f"{OPTIONS_HEADER}: could not locate `struct Options`"]
    rows = parse_doc_table(read(root, RECOVERY_DOC))
    if not rows:
        return [f"{RECOVERY_DOC}: no `option` | `default` table rows found"]
    documented = {name for name, _ in rows}
    for name, doc_default in rows:
        if name not in fields:
            errors.append(
                f"{RECOVERY_DOC}: documents Options::{name}, which does "
                f"not exist in {OPTIONS_HEADER}"
            )
        elif normalize(doc_default) != normalize(fields[name]):
            errors.append(
                f"{RECOVERY_DOC}: Options::{name} default documented as "
                f"`{doc_default}` but {OPTIONS_HEADER} declares "
                f"`{fields[name]}`"
            )
    for name in REQUIRED_OPTIONS:
        if name not in documented:
            errors.append(
                f"{RECOVERY_DOC}: recovery knob Options::{name} is "
                f"missing from the §6 table"
            )
    return errors


def count_matrix_entries(text):
    match = re.search(r"kMatrix\[\]\s*=\s*\{(.*?)\n\};", text, re.DOTALL)
    if match is None:
        return None
    return len(re.findall(r'\{\s*"[^"]+"', match.group(1)))


def count_registry_points(text):
    match = re.search(r"kRegistry\[\]\s*=\s*\{(.*?)\n\};", text, re.DOTALL)
    if match is None:
        return None
    return len(re.findall(r'\{\s*"([^"]+)"', match.group(1)))


def check_crash_matrix(root):
    errors = []
    doc = read(root, EXPERIMENTS_DOC)
    claim = re.search(
        r"matrix \((\d+) entries\) covers all (\d+) registered points", doc
    )
    if claim is None:
        return [
            f"{EXPERIMENTS_DOC}: crash-matrix claim sentence "
            f'("matrix (N entries) covers all M registered points") '
            f"not found"
        ]
    doc_entries, doc_points = int(claim.group(1)), int(claim.group(2))
    entries = count_matrix_entries(read(root, TORTURE_TEST))
    points = count_registry_points(read(root, FAULT_REGISTRY))
    if entries is None:
        errors.append(f"{TORTURE_TEST}: could not locate kMatrix[]")
    elif entries != doc_entries:
        errors.append(
            f"{EXPERIMENTS_DOC}: claims {doc_entries} matrix entries but "
            f"{TORTURE_TEST} kMatrix has {entries}"
        )
    if points is None:
        errors.append(f"{FAULT_REGISTRY}: could not locate kRegistry[]")
    elif points != doc_points:
        errors.append(
            f"{EXPERIMENTS_DOC}: claims {doc_points} registered points "
            f"but {FAULT_REGISTRY} kRegistry has {points}"
        )
    return errors


CHECKS = {
    "options-table": check_options_table,
    "crash-matrix": check_crash_matrix,
}


# --- self-test -----------------------------------------------------------

GOOD_OPTIONS = """\
struct Options {
  std::string checkpoint_dir = "/tmp/x";
  size_t ckpt_read_ahead_bytes = 1 << 20;
  int recovery_threads = 0;
  int replay_threads = 0;
  int storage_shards = 0;
  size_t log_read_ahead_bytes = 1 << 20;
  std::string command_log_path;
  int command_log_flush_ms = 10;
};
"""

GOOD_DOC = """\
| Option | Default | Role |
|---|---|---|
| `checkpoint_dir` | `"/tmp/x"` | d |
| `ckpt_read_ahead_bytes` | `1 << 20` | d |
| `recovery_threads` | `0` | d |
| `replay_threads` | `0` | d |
| `storage_shards` | `0` | d |
| `log_read_ahead_bytes` | `1 << 20` | d |
| `command_log_path` | `""` | d |
| `command_log_flush_ms` | `10` | d |
"""

GOOD_EXPERIMENTS = "The enumerated matrix (2 entries) covers all 2 " \
    "registered points —\n"

GOOD_MATRIX = """\
const MatrixEntry kMatrix[] = {
    {"a.b", 1, "calc", 1, 0},
    {"c.d", 2, "calc", 1, 0},
};
"""

GOOD_REGISTRY = """\
constexpr FaultPointInfo kRegistry[] = {
    {"a.b", "site one"},
    {"c.d", "site two"},
};
"""

# (mutator, failing check, expected error fragment)
SELF_TEST_CASES = [
    # Default drifted in code.
    (
        lambda fs: fs.update(
            {OPTIONS_HEADER: GOOD_OPTIONS.replace(
                "replay_threads = 0", "replay_threads = 2")}
        ),
        "options-table",
        "default documented as",
    ),
    # Field renamed/removed in code.
    (
        lambda fs: fs.update(
            {OPTIONS_HEADER: GOOD_OPTIONS.replace(
                "log_read_ahead_bytes", "log_readahead_bytes")}
        ),
        "options-table",
        "does not exist",
    ),
    # Required row dropped from the doc.
    (
        lambda fs: fs.update(
            {RECOVERY_DOC: "\n".join(
                line for line in GOOD_DOC.splitlines()
                if "`replay_threads`" not in line) + "\n"}
        ),
        "options-table",
        "missing from the §6 table",
    ),
    # Matrix grew without the doc count.
    (
        lambda fs: fs.update(
            {TORTURE_TEST: GOOD_MATRIX.replace(
                "};", '    {"e.f", 1, "calc", 1, 0},\n};')}
        ),
        "crash-matrix",
        "kMatrix has 3",
    ),
    # A new fault point registered without the doc count.
    (
        lambda fs: fs.update(
            {FAULT_REGISTRY: GOOD_REGISTRY.replace(
                "};", '    {"e.f", "site three"},\n};')}
        ),
        "crash-matrix",
        "kRegistry has 3",
    ),
    # Claim sentence deleted entirely.
    (
        lambda fs: fs.update({EXPERIMENTS_DOC: "no claim here\n"}),
        "crash-matrix",
        "not found",
    ),
]


def write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    base = {
        OPTIONS_HEADER: GOOD_OPTIONS,
        RECOVERY_DOC: GOOD_DOC,
        EXPERIMENTS_DOC: GOOD_EXPERIMENTS,
        TORTURE_TEST: GOOD_MATRIX,
        FAULT_REGISTRY: GOOD_REGISTRY,
    }
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        write_tree(tmp, base)
        for name, check in CHECKS.items():
            errors = check(tmp)
            if errors:
                failures.append(f"clean tree tripped {name}: {errors}")
    for i, (mutate, check_name, fragment) in enumerate(SELF_TEST_CASES):
        files = dict(base)
        mutate(files)
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, files)
            errors = CHECKS[check_name](tmp)
            if not errors:
                failures.append(
                    f"case {i}: {check_name} missed the seeded drift")
            elif not any(fragment in e for e in errors):
                failures.append(
                    f"case {i}: {check_name} fired, but no error mentions "
                    f"{fragment!r}: {errors}")
    if failures:
        print("lint_docs self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint_docs self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    checks = list(CHECKS)
    if "--check" in argv:
        idx = argv.index("--check")
        name = argv[idx + 1]
        if name not in CHECKS:
            print(f"unknown check {name!r}; have: {', '.join(CHECKS)}")
            return 2
        checks = [name]
        argv = argv[:idx] + argv[idx + 2:]
    positional = [a for a in argv[1:] if not a.startswith("--")]
    root = positional[0] if positional else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    errors = []
    for name in checks:
        errors.extend(CHECKS[name](root))
    for e in errors:
        print("lint_docs: " + e)
    if errors:
        print(f"lint_docs: {len(errors)} doc-drift finding(s)")
        return 1
    print(f"lint_docs: {', '.join(checks)} in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
